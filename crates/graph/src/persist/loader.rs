//! Zero-copy loading: [`MmapSnapshot`], [`MmapShardedSnapshot`] and the
//! per-worker [`MmapFragmentView`].
//!
//! A loaded snapshot keeps the file mapped and serves every array read —
//! CSR offsets, labels, neighbours, label partition, triple arrays —
//! directly from the mapping by reinterpreting validated byte ranges as
//! `&[u32]` / `&[NodeId]` slices.  Only the variable-length payloads that
//! cannot be viewed in place are materialised at load time: the string
//! table (bridged into the process interner), the per-node attribute
//! tuples, the small range dictionaries, and (for sharded files) the
//! partition metadata.
//!
//! **Safety discipline.**  All `unsafe` in this module is the slice
//! reinterpretation, and it is sound because `load` validates, before any
//! view is handed out, that every section lies inside the mapping, is
//! aligned, has a consistent element count, and satisfies the structural
//! invariants the readers rely on (monotone offsets, in-bounds neighbour
//! ids and symbol ids, sorted runs, permutation label order).  Corrupt
//! input therefore fails with a typed [`PersistError`] at load — never
//! with UB, a panic, or a silently wrong answer at read time.
//!
//! **Symbol spaces.**  File symbol ids are lexicographic by string and
//! process [`Sym`]s are interning-ordered, so the two orders differ; the
//! loader never rewrites the mapped arrays.  Instead each query symbol is
//! translated into file space (one hash lookup on a tiny dictionary), the
//! binary search runs over the file-ordered run, and results translate
//! back through a dense `file id → Sym` table.  A symbol the file never
//! saw simply yields an empty run, mirroring the in-memory snapshot.

use super::format::{
    file_checksum, file_kind, kind, read_section_table, BlobReader, FileHeader, SectionEntry,
    HEADER_LEN, SECTION_ALIGN,
};
use super::mmap::MmapFile;
use super::PersistError;
use crate::attrs::AttrMap;
use crate::graph::{EdgeRef, NodeId};
use crate::interner::{intern, Sym};
use crate::partition::{Fragment, Partition, PartitionStrategy};
use crate::shard::{RemoteAccounting, ShardedRead};
use crate::value::Value;
use crate::view::GraphView;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A validated `u32`-array section: byte offset + element count.
#[derive(Debug, Clone, Copy)]
struct Sect {
    off: usize,
    len: usize,
}

/// One CSR side's three array sections.
#[derive(Debug, Clone, Copy)]
struct SideSect {
    offsets: Sect,
    labels: Sect,
    neighbors: Sect,
}

/// Reinterpret a mapped byte range as `&[u32]`.
///
/// Soundness: the range was bounds-checked against the mapping and starts
/// at a [`SECTION_ALIGN`]-multiple offset of an (at least) 8-byte-aligned
/// base, so the pointer is 4-byte aligned; `u32` has no invalid bit
/// patterns; the mapping is immutable and outlives the borrow.
#[inline]
fn u32s(map: &MmapFile, s: Sect) -> &[u32] {
    let bytes = &map.bytes()[s.off..s.off + s.len * 4];
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), s.len) }
}

/// Reinterpret a `u32` slice as node ids (`NodeId` is
/// `repr(transparent)` over `u32`).
#[inline]
fn as_node_ids(xs: &[u32]) -> &[NodeId] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<NodeId>(), xs.len()) }
}

/// Borrowed view of one CSR side's raw arrays, rows and labels in file
/// space — the mmap twin of [`crate::csr::CsrSide`].
#[derive(Clone, Copy)]
struct RawSide<'a> {
    offsets: &'a [u32],
    labels: &'a [u32],
    neighbors: &'a [u32],
}

impl<'a> RawSide<'a> {
    #[inline]
    fn node_range(&self, row: usize) -> std::ops::Range<usize> {
        self.offsets[row] as usize..self.offsets[row + 1] as usize
    }

    #[inline]
    fn degree(&self, row: usize) -> usize {
        let r = self.node_range(row);
        r.end - r.start
    }

    fn labeled_range(&self, row: usize, file_label: u32) -> std::ops::Range<usize> {
        let range = self.node_range(row);
        let run = &self.labels[range.clone()];
        let start = run.partition_point(|&l| l < file_label);
        let end = run.partition_point(|&l| l <= file_label);
        range.start + start..range.start + end
    }

    fn labeled_slice(&self, row: usize, file_label: u32) -> &'a [NodeId] {
        as_node_ids(&self.neighbors[self.labeled_range(row, file_label)])
    }

    fn contains(&self, row: usize, file_label: u32, neighbor: NodeId) -> bool {
        self.labeled_slice(row, file_label)
            .binary_search(&neighbor)
            .is_ok()
    }
}

/// The file ↔ process symbol translation built from the string table.
#[derive(Debug)]
struct SymBridge {
    file_to_proc: Vec<Sym>,
    proc_to_file: HashMap<Sym, u32>,
}

impl SymBridge {
    #[inline]
    fn to_proc(&self, fid: u32) -> Sym {
        self.file_to_proc[fid as usize]
    }

    fn to_proc_checked(&self, fid: u32) -> Result<Sym, PersistError> {
        self.file_to_proc.get(fid as usize).copied().ok_or_else(|| {
            PersistError::Corrupt(format!(
                "symbol id {fid} out of range ({} strings)",
                self.file_to_proc.len()
            ))
        })
    }

    #[inline]
    fn to_file(&self, sym: Sym) -> Option<u32> {
        self.proc_to_file.get(&sym).copied()
    }

    fn len(&self) -> usize {
        self.file_to_proc.len()
    }
}

/// A parsed, checksum-verified file: mapping + header + section directory.
///
/// `table` keeps the entries in **file (push) order** — the directory the
/// compaction writer replays when it byte-copies sections into the next
/// epoch; `sections` is the same set keyed for random access.
struct FileData {
    map: Arc<MmapFile>,
    header: FileHeader,
    table: Vec<SectionEntry>,
    sections: HashMap<(u32, u32), SectionEntry>,
}

impl FileData {
    fn open(path: &Path) -> Result<FileData, PersistError> {
        if cfg!(target_endian = "big") {
            return Err(PersistError::UnsupportedHost(
                "snapshot files are little-endian and this host is big-endian".into(),
            ));
        }
        let map = MmapFile::open(path)?;
        let bytes = map.bytes();
        let header = FileHeader::parse(bytes)?;
        if header.section_align != SECTION_ALIGN as u32 {
            return Err(PersistError::Corrupt(format!(
                "unexpected section alignment {} (expected {SECTION_ALIGN})",
                header.section_align
            )));
        }
        if header.total_len > bytes.len() as u64 {
            return Err(PersistError::Truncated {
                expected: header.total_len,
                actual: bytes.len() as u64,
            });
        }
        if header.total_len < bytes.len() as u64 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes past the recorded file length",
                bytes.len() as u64 - header.total_len
            )));
        }
        let computed = file_checksum(&bytes[HEADER_LEN..]);
        if computed != header.checksum {
            return Err(PersistError::ChecksumMismatch {
                stored: header.checksum,
                computed,
            });
        }
        let table = read_section_table(bytes, &header)?;
        let mut sections = HashMap::new();
        for entry in &table {
            if sections.insert((entry.kind, entry.owner), *entry).is_some() {
                return Err(PersistError::Corrupt(format!(
                    "duplicate section kind {} for owner {}",
                    entry.kind, entry.owner
                )));
            }
        }
        Ok(FileData {
            map: Arc::new(map),
            header,
            table,
            sections,
        })
    }

    fn entry(&self, kind: u32, owner: u32) -> Result<SectionEntry, PersistError> {
        self.sections.get(&(kind, owner)).copied().ok_or_else(|| {
            PersistError::Corrupt(format!("missing section kind {kind} for owner {owner}"))
        })
    }

    /// A `u32`-array section (byte length must match the element count).
    fn u32_sect(&self, kind: u32, owner: u32) -> Result<Sect, PersistError> {
        let entry = self.entry(kind, owner)?;
        // Checked multiply: a crafted elem_count near u64::MAX must fail
        // typed here, not wrap and defeat the length check (the slice it
        // would later describe is the module's UB contract on the line).
        if entry.elem_count.checked_mul(4) != Some(entry.byte_len) {
            return Err(PersistError::Corrupt(format!(
                "section kind {kind}: {} bytes for {} u32 elements",
                entry.byte_len, entry.elem_count
            )));
        }
        Ok(Sect {
            off: entry.offset as usize,
            len: entry.elem_count as usize,
        })
    }

    /// A blob section: raw bytes + declared element count.
    ///
    /// The element count is capped by the blob's byte length (each record
    /// of every blob kind occupies at least one byte), so decoders can use
    /// it for `with_capacity` without a crafted count forcing a huge
    /// allocation before the bounds-checked parse would catch it.
    fn blob(&self, kind: u32, owner: u32) -> Result<(&[u8], usize), PersistError> {
        let entry = self.entry(kind, owner)?;
        let start = entry.offset as usize;
        let end = start + entry.byte_len as usize;
        if entry.elem_count > entry.byte_len {
            return Err(PersistError::Corrupt(format!(
                "section kind {kind}: {} records in {} bytes",
                entry.elem_count, entry.byte_len
            )));
        }
        Ok((&self.map.bytes()[start..end], entry.elem_count as usize))
    }

    fn side(&self, kinds: (u32, u32, u32), owner: u32) -> Result<SideSect, PersistError> {
        Ok(SideSect {
            offsets: self.u32_sect(kinds.0, owner)?,
            labels: self.u32_sect(kinds.1, owner)?,
            neighbors: self.u32_sect(kinds.2, owner)?,
        })
    }
}

fn decode_strings(blob: &[u8], declared: usize) -> Result<SymBridge, PersistError> {
    let mut reader = BlobReader::new(blob, "string table");
    let count = reader.u32()? as usize;
    if count != declared {
        return Err(PersistError::Corrupt(format!(
            "string table declares {declared} entries but encodes {count}"
        )));
    }
    let mut file_to_proc = Vec::with_capacity(count);
    let mut proc_to_file = HashMap::with_capacity(count);
    let mut previous: Option<String> = None;
    for fid in 0..count {
        let len = reader.u32()? as usize;
        let text = std::str::from_utf8(reader.bytes(len)?)
            .map_err(|_| PersistError::Corrupt(format!("string {fid} is not UTF-8")))?;
        if previous.as_deref() >= Some(text) {
            // Strict lexicographic order doubles as a uniqueness check —
            // two file ids must never intern to the same process symbol.
            return Err(PersistError::Corrupt(format!(
                "string table not strictly sorted at entry {fid}"
            )));
        }
        previous = Some(text.to_owned());
        let sym = intern(text);
        file_to_proc.push(sym);
        proc_to_file.insert(sym, fid as u32);
    }
    reader.finish()?;
    Ok(SymBridge {
        file_to_proc,
        proc_to_file,
    })
}

/// Lazily-materialised attribute tuples over a mapped blob section.
///
/// The load-time pass only *validates* every record (symbol ids in range,
/// known value tags, UTF-8 strings, exact blob consumption) and indexes
/// the record boundaries; the `AttrMap` of a node is decoded on first
/// access and cached in a [`OnceLock`].  Detection touches the attributes
/// of matched candidates only, so most tuples of a large snapshot are
/// never materialised at all — and load time stays independent of the
/// attribute payload's heap shape.
#[derive(Debug)]
struct LazyAttrs {
    /// Byte range of the attribute blob inside the mapping.
    off: usize,
    len: usize,
    /// Record boundaries within the blob (`count + 1` entries).
    starts: Vec<u32>,
    /// One cell per record, filled on first access.
    cells: Vec<OnceLock<AttrMap>>,
}

impl LazyAttrs {
    /// Validate the blob section and index its records.
    fn load(
        file: &FileData,
        kind: u32,
        owner: u32,
        count: usize,
        syms: &SymBridge,
        what: &'static str,
    ) -> Result<LazyAttrs, PersistError> {
        let entry = file.entry(kind, owner)?;
        let (blob, declared) = file.blob(kind, owner)?;
        if declared != count {
            return Err(PersistError::Corrupt(format!(
                "{what}: {declared} attribute tuples for {count} rows"
            )));
        }
        if blob.len() > u32::MAX as usize {
            return Err(PersistError::Corrupt(format!(
                "{what}: attribute blob exceeds the 4 GiB record index"
            )));
        }
        let mut reader = BlobReader::new(blob, what);
        let mut starts = Vec::with_capacity(count + 1);
        for _ in 0..count {
            starts.push(reader.pos() as u32);
            let attrs = reader.u32()?;
            for _ in 0..attrs {
                syms.to_proc_checked(reader.u32()?)?;
                match reader.u8()? {
                    0 => {
                        reader.i64()?;
                    }
                    1 => {
                        let len = reader.u32()? as usize;
                        std::str::from_utf8(reader.bytes(len)?).map_err(|_| {
                            PersistError::Corrupt(format!("{what}: string is not UTF-8"))
                        })?;
                    }
                    2 => {
                        reader.u8()?;
                    }
                    other => {
                        return Err(PersistError::Corrupt(format!(
                            "{what}: unknown attribute value tag {other}"
                        )))
                    }
                }
            }
        }
        starts.push(reader.pos() as u32);
        reader.finish()?;
        Ok(LazyAttrs {
            off: entry.offset as usize,
            len: entry.byte_len as usize,
            starts,
            cells: std::iter::repeat_with(OnceLock::new).take(count).collect(),
        })
    }

    /// The tuple of record `idx`, decoding and caching it on first use.
    ///
    /// Infallible: every record was fully validated by [`LazyAttrs::load`].
    fn get(&self, map: &MmapFile, syms: &SymBridge, idx: usize) -> &AttrMap {
        self.cells[idx].get_or_init(|| {
            let blob = &map.bytes()[self.off..self.off + self.len];
            let record = &blob[self.starts[idx] as usize..self.starts[idx + 1] as usize];
            let mut reader = BlobReader::new(record, "attribute record");
            let mut attrs = AttrMap::new();
            let count = reader.u32().expect("validated at load");
            for _ in 0..count {
                let name = syms.to_proc(reader.u32().expect("validated at load"));
                let value = match reader.u8().expect("validated at load") {
                    0 => Value::Int(reader.i64().expect("validated at load")),
                    1 => {
                        let len = reader.u32().expect("validated at load") as usize;
                        let bytes = reader.bytes(len).expect("validated at load");
                        Value::Str(
                            std::str::from_utf8(bytes)
                                .expect("validated at load")
                                .to_owned(),
                        )
                    }
                    _ => Value::Bool(reader.u8().expect("validated at load") != 0),
                };
                attrs.set(name, value);
            }
            attrs
        })
    }
}

/// Validate one CSR side's invariants and return its entry count.
fn validate_side(
    map: &MmapFile,
    side: SideSect,
    rows: usize,
    neighbor_bound: u32,
    sym_count: u32,
    what: &'static str,
) -> Result<usize, PersistError> {
    let offsets = u32s(map, side.offsets);
    if offsets.len() != rows + 1 || offsets.first() != Some(&0) {
        return Err(PersistError::Corrupt(format!(
            "{what}: offsets array has {} entries for {rows} rows",
            offsets.len()
        )));
    }
    let entries = *offsets.last().expect("non-empty offsets") as usize;
    if side.labels.len != entries || side.neighbors.len != entries {
        return Err(PersistError::Corrupt(format!(
            "{what}: {} labels / {} neighbours for {entries} entries",
            side.labels.len, side.neighbors.len
        )));
    }
    let labels = u32s(map, side.labels);
    let neighbors = u32s(map, side.neighbors);
    // Neighbour bound: one whole-array pass (vectorises).
    if let Some(&bad) = neighbors.iter().find(|&&n| n >= neighbor_bound) {
        return Err(PersistError::Corrupt(format!(
            "{what}: neighbour id {bad} out of range"
        )));
    }
    // Label bound + per-run `(label, neighbour)` ordering, fused into one
    // pass over packed 64-bit keys — this runs on every load, over every
    // edge entry, so it is written for throughput.
    let label_bound = u64::from(sym_count) << 32;
    for window in offsets.windows(2) {
        let (start, end) = (window[0] as usize, window[1] as usize);
        if start > end || end > entries {
            return Err(PersistError::Corrupt(format!(
                "{what}: offsets are not monotone ({start} > {end})"
            )));
        }
        let mut previous = 0u64;
        for i in start..end {
            let key = (u64::from(labels[i]) << 32) | u64::from(neighbors[i]);
            if key >= label_bound {
                return Err(PersistError::Corrupt(format!(
                    "{what}: label id {} out of range",
                    labels[i]
                )));
            }
            if key < previous {
                return Err(PersistError::Corrupt(format!(
                    "{what}: run of row starting at entry {start} is not sorted"
                )));
            }
            previous = key;
        }
    }
    Ok(entries)
}

/// Decode the label-partition dictionary and cross-check it against the
/// node labels: the ranges must **exactly tile** the label-order array in
/// file-symbol order, and every node inside a range must carry that
/// range's label.  A repointed, swapped or overlapping range is therefore
/// a typed error at load, never a silently wrong candidate set.
fn decode_label_ranges(
    blob: &[u8],
    declared: usize,
    node_labels: &[u32],
    label_order: &[u32],
    syms: &SymBridge,
) -> Result<HashMap<Sym, (u32, u32)>, PersistError> {
    let mut reader = BlobReader::new(blob, "label ranges");
    let mut out = HashMap::with_capacity(declared);
    let mut previous: Option<u32> = None;
    let mut cursor = 0u32;
    for _ in 0..declared {
        let fid = reader.u32()?;
        let start = reader.u32()?;
        let end = reader.u32()?;
        if previous >= Some(fid) {
            return Err(PersistError::Corrupt(
                "label ranges are not sorted by symbol".into(),
            ));
        }
        previous = Some(fid);
        if start != cursor || start > end || end as usize > label_order.len() {
            return Err(PersistError::Corrupt(format!(
                "label range {start}..{end} does not tile the label order \
                 (expected start {cursor}, order length {})",
                label_order.len()
            )));
        }
        cursor = end;
        for &node in &label_order[start as usize..end as usize] {
            if node_labels[node as usize] != fid {
                return Err(PersistError::Corrupt(format!(
                    "label range of symbol {fid} lists node {node} whose label is {}",
                    node_labels[node as usize]
                )));
            }
        }
        out.insert(syms.to_proc_checked(fid)?, (start, end));
    }
    if cursor as usize != label_order.len() {
        return Err(PersistError::Corrupt(format!(
            "label ranges cover {cursor} of {} label-order entries",
            label_order.len()
        )));
    }
    reader.finish()?;
    Ok(out)
}

type TripleRanges = HashMap<(Sym, Sym, Sym), (u32, u32)>;

/// Decode the triple-index dictionary and cross-check it against the node
/// labels and the out-CSR.  The ranges must exactly tile the triple
/// arrays in key order and hold as many entries as the graph has edges;
/// inside a range, entries must be strictly `(src, dst)`-sorted with both
/// endpoints labelled as the key says, and the first and last entry of
/// every range are probed against the out-CSR to confirm the edge exists
/// under the key's edge label.  (Entries between the probes are verified
/// for endpoint labels and ordering, not re-derived edge-by-edge — a file
/// forging those is indistinguishable from one validly encoding a
/// different graph.)
#[allow(clippy::too_many_arguments)]
fn decode_triple_ranges(
    blob: &[u8],
    declared: usize,
    node_labels: &[u32],
    triple_src: &[u32],
    triple_dst: &[u32],
    edge_count: usize,
    out_side: RawSide<'_>,
    syms: &SymBridge,
) -> Result<TripleRanges, PersistError> {
    if triple_src.len() != edge_count {
        return Err(PersistError::Corrupt(format!(
            "triple arrays hold {} entries for {edge_count} edges",
            triple_src.len()
        )));
    }
    let mut reader = BlobReader::new(blob, "triple ranges");
    let mut out = HashMap::with_capacity(declared);
    let mut previous: Option<(u32, u32, u32)> = None;
    let mut cursor = 0u32;
    for _ in 0..declared {
        let key = (reader.u32()?, reader.u32()?, reader.u32()?);
        let start = reader.u32()?;
        let end = reader.u32()?;
        if previous >= Some(key) {
            return Err(PersistError::Corrupt(
                "triple ranges are not sorted by key".into(),
            ));
        }
        previous = Some(key);
        if start != cursor || start > end || end as usize > triple_src.len() {
            return Err(PersistError::Corrupt(format!(
                "triple range {start}..{end} does not tile the triple arrays \
                 (expected start {cursor}, array length {})",
                triple_src.len()
            )));
        }
        cursor = end;
        let mut prev_pair = None;
        for i in start as usize..end as usize {
            let (src, dst) = (triple_src[i], triple_dst[i]);
            if node_labels[src as usize] != key.0 || node_labels[dst as usize] != key.2 {
                return Err(PersistError::Corrupt(format!(
                    "triple range {key:?} lists edge {src}->{dst} with other endpoint labels"
                )));
            }
            if prev_pair >= Some((src, dst)) {
                return Err(PersistError::Corrupt(format!(
                    "triple range {key:?} is not strictly (src, dst)-sorted"
                )));
            }
            prev_pair = Some((src, dst));
        }
        if start < end {
            for i in [start as usize, end as usize - 1] {
                if !out_side.contains(triple_src[i] as usize, key.1, NodeId(triple_dst[i])) {
                    return Err(PersistError::Corrupt(format!(
                        "triple range {key:?} lists edge {}->{} absent from the CSR",
                        triple_src[i], triple_dst[i]
                    )));
                }
            }
        }
        out.insert(
            (
                syms.to_proc_checked(key.0)?,
                syms.to_proc_checked(key.1)?,
                syms.to_proc_checked(key.2)?,
            ),
            (start, end),
        );
    }
    if cursor as usize != triple_src.len() {
        return Err(PersistError::Corrupt(format!(
            "triple ranges cover {cursor} of {} entries",
            triple_src.len()
        )));
    }
    reader.finish()?;
    Ok(out)
}

/// A memory-mapped, read-only snapshot implementing [`GraphView`].
///
/// Produced by [`MmapSnapshot::load`] from a file written by
/// [`crate::persist::SnapshotWriter`]; behaves exactly like the
/// [`crate::CsrSnapshot`] it was serialised from (same violation sets and
/// deltas through every detector), while the heavyweight arrays stay on
/// disk and are paged in on demand.
#[derive(Debug)]
pub struct MmapSnapshot {
    map: Arc<MmapFile>,
    syms: Arc<SymBridge>,
    /// The file's section directory in push order, retained so the
    /// compaction writer can byte-copy whole sections (and, for sharded
    /// files, whole per-fragment groups) without re-encoding them.
    section_table: Vec<SectionEntry>,
    node_count: usize,
    edge_count: usize,
    epoch: u64,
    attrs: LazyAttrs,
    label_ranges: HashMap<Sym, (u32, u32)>,
    triple_ranges: TripleRanges,
    node_labels: Sect,
    out: SideSect,
    inn: SideSect,
    label_order: Sect,
    triple_src: Sect,
    triple_dst: Sect,
}

impl MmapSnapshot {
    /// Memory-map a snapshot file written by
    /// [`SnapshotWriter::write`](crate::persist::SnapshotWriter::write).
    pub fn load(path: &Path) -> Result<MmapSnapshot, PersistError> {
        let _span = ngd_obs::span!("persist.mmap_load");
        let file = FileData::open(path)?;
        if file.header.file_kind != file_kind::SNAPSHOT {
            return Err(PersistError::WrongKind {
                expected: file_kind::SNAPSHOT,
                found: file.header.file_kind,
            });
        }
        decode_global(&file)
    }

    /// Size of the backing file in bytes.
    pub fn file_len(&self) -> usize {
        self.map.len()
    }

    /// The snapshot epoch recorded in the file header: 0 for a freshly
    /// frozen graph (and for every version-1 file), incremented by each
    /// compaction ([`crate::persist::CompactionWriter`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    fn arr(&self, s: Sect) -> &[u32] {
        u32s(&self.map, s)
    }

    #[inline]
    fn out_side(&self) -> RawSide<'_> {
        RawSide {
            offsets: self.arr(self.out.offsets),
            labels: self.arr(self.out.labels),
            neighbors: self.arr(self.out.neighbors),
        }
    }

    #[inline]
    fn in_side(&self) -> RawSide<'_> {
        RawSide {
            offsets: self.arr(self.inn.offsets),
            labels: self.arr(self.inn.labels),
            neighbors: self.arr(self.inn.neighbors),
        }
    }

    /// The nodes labelled `label`, as a contiguous slice of the mapped
    /// label partition (mirrors [`crate::CsrSnapshot::nodes_with_label`]).
    pub fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        match self.label_ranges.get(&label) {
            Some(&(start, end)) => {
                &as_node_ids(self.arr(self.label_order))[start as usize..end as usize]
            }
            None => &[],
        }
    }

    /// Out-neighbours of `id` along `label`, as a mapped sorted slice.
    pub fn out_neighbors_labeled(&self, id: NodeId, label: Sym) -> &[NodeId] {
        match self.syms.to_file(label) {
            Some(fid) => self.out_side().labeled_slice(id.index(), fid),
            None => &[],
        }
    }

    /// In-neighbours of `id` along `label`, as a mapped sorted slice.
    pub fn in_neighbors_labeled(&self, id: NodeId, label: Sym) -> &[NodeId] {
        match self.syms.to_file(label) {
            Some(fid) => self.in_side().labeled_slice(id.index(), fid),
            None => &[],
        }
    }

    /// Number of edges matching the label triple.
    pub fn triple_count(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> usize {
        match self.triple_ranges.get(&(src_label, edge_label, dst_label)) {
            Some(&(start, end)) => (end - start) as usize,
            None => 0,
        }
    }

    /// An empty-update [`crate::DeltaOverlay`] over this snapshot (mirrors
    /// [`crate::CsrSnapshot::as_overlay`]).
    pub fn as_overlay(&self) -> crate::overlay::DeltaOverlay<'_, MmapSnapshot> {
        crate::overlay::DeltaOverlay::empty(self)
    }

    // Raw mapped-array accessors for the compaction writer
    // ([`crate::persist::CompactionWriter`]), which merge-joins these
    // file-ordered arrays with a net `ΔG` without re-freezing.  All crate
    // private: the file layout stays an implementation detail.

    /// The strings of the file's symbol table, in file-id order
    /// (lexicographic by construction).
    pub(crate) fn raw_strings(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.syms.file_to_proc.iter().map(|s| s.as_str())
    }

    /// Translate a file symbol id into its interned process symbol.
    pub(crate) fn sym_of_fid(&self, fid: u32) -> Sym {
        self.syms.to_proc(fid)
    }

    /// Translate a process symbol into its file id, if the file knows it.
    pub(crate) fn fid_of_sym(&self, sym: Sym) -> Option<u32> {
        self.syms.to_file(sym)
    }

    /// Per-node labels as file symbol ids.
    pub(crate) fn raw_node_labels(&self) -> &[u32] {
        self.arr(self.node_labels)
    }

    /// One CSR side's `(offsets, labels, neighbors)` mapped arrays.
    pub(crate) fn raw_side_arrays(&self, out: bool) -> (&[u32], &[u32], &[u32]) {
        let side = if out { self.out_side() } else { self.in_side() };
        (side.offsets, side.labels, side.neighbors)
    }

    /// The label-partition permutation array.
    pub(crate) fn raw_label_order(&self) -> &[u32] {
        self.arr(self.label_order)
    }

    /// The label-partition ranges in file order (sorted by range start,
    /// which equals file-symbol order because the ranges tile the array).
    pub(crate) fn raw_label_ranges(&self) -> Vec<(Sym, u32, u32)> {
        let mut out: Vec<(Sym, u32, u32)> = self
            .label_ranges
            .iter()
            .map(|(&sym, &(start, end))| (sym, start, end))
            .collect();
        out.sort_unstable_by_key(|&(_, start, _)| start);
        out
    }

    /// The triple-index `(src, dst)` arrays.
    pub(crate) fn raw_triple_arrays(&self) -> (&[u32], &[u32]) {
        (self.arr(self.triple_src), self.arr(self.triple_dst))
    }

    /// The triple-index ranges in file order (sorted by range start).
    pub(crate) fn raw_triple_ranges(&self) -> Vec<((Sym, Sym, Sym), u32, u32)> {
        let mut out: Vec<((Sym, Sym, Sym), u32, u32)> = self
            .triple_ranges
            .iter()
            .map(|(&key, &(start, end))| (key, start, end))
            .collect();
        out.sort_unstable_by_key(|&(_, start, _)| start);
        out
    }

    /// The raw bytes of node `idx`'s attribute record (validated at load).
    pub(crate) fn raw_attr_record(&self, idx: usize) -> &[u8] {
        let blob = &self.map.bytes()[self.attrs.off..self.attrs.off + self.attrs.len];
        &blob[self.attrs.starts[idx] as usize..self.attrs.starts[idx + 1] as usize]
    }

    /// The file's section directory in push order.  Lets the compaction
    /// writer replay unchanged sections byte-for-byte instead of
    /// re-encoding them.
    pub(crate) fn raw_section_table(&self) -> &[SectionEntry] {
        &self.section_table
    }

    /// The mapped payload bytes of a directory entry.
    pub(crate) fn raw_section_bytes(&self, entry: &SectionEntry) -> &[u8] {
        &self.map.bytes()[entry.offset as usize..][..entry.byte_len as usize]
    }

    /// Look up a section by `(kind, owner)` and return its payload bytes
    /// plus the declared element count.  Linear scan: the table is tiny
    /// (a handful of global sections + 11 per fragment).
    pub(crate) fn raw_section(&self, kind: u32, owner: u32) -> Option<(&[u8], u64)> {
        self.section_table
            .iter()
            .find(|e| e.kind == kind && e.owner == owner)
            .map(|e| (self.raw_section_bytes(e), e.elem_count))
    }
}

/// Decode and validate the global (owner 0) sections of a verified file.
fn decode_global(file: &FileData) -> Result<MmapSnapshot, PersistError> {
    let n = usize::try_from(file.header.node_count)
        .map_err(|_| PersistError::Corrupt("node count exceeds address space".into()))?;
    let edge_count = usize::try_from(file.header.edge_count)
        .map_err(|_| PersistError::Corrupt("edge count exceeds address space".into()))?;

    let (blob, declared) = file.blob(kind::STRINGS, 0)?;
    let syms = decode_strings(blob, declared)?;
    let sym_count = syms.len() as u32;

    let node_labels = file.u32_sect(kind::NODE_LABELS, 0)?;
    if node_labels.len != n {
        return Err(PersistError::Corrupt(format!(
            "{} node labels for {n} nodes",
            node_labels.len
        )));
    }
    for &label in u32s(&file.map, node_labels) {
        if label >= sym_count {
            return Err(PersistError::Corrupt(format!(
                "node label id {label} out of range"
            )));
        }
    }

    let attrs = LazyAttrs::load(file, kind::NODE_ATTRS, 0, n, &syms, "node attributes")?;

    let out = file.side(
        (kind::OUT_OFFSETS, kind::OUT_LABELS, kind::OUT_NEIGHBORS),
        0,
    )?;
    let out_entries = validate_side(&file.map, out, n, n as u32, sym_count, "out CSR")?;
    if out_entries != edge_count {
        return Err(PersistError::Corrupt(format!(
            "out CSR holds {out_entries} entries but the header claims {edge_count} edges"
        )));
    }
    let inn = file.side((kind::IN_OFFSETS, kind::IN_LABELS, kind::IN_NEIGHBORS), 0)?;
    let in_entries = validate_side(&file.map, inn, n, n as u32, sym_count, "in CSR")?;
    if in_entries != edge_count {
        return Err(PersistError::Corrupt(format!(
            "in CSR holds {in_entries} entries but the header claims {edge_count} edges"
        )));
    }

    let label_order = file.u32_sect(kind::LABEL_ORDER, 0)?;
    if label_order.len != n {
        return Err(PersistError::Corrupt(format!(
            "label order has {} entries for {n} nodes",
            label_order.len
        )));
    }
    let mut seen = vec![false; n];
    for &id in u32s(&file.map, label_order) {
        if (id as usize) >= n || std::mem::replace(&mut seen[id as usize], true) {
            return Err(PersistError::Corrupt(
                "label order is not a permutation of the node ids".into(),
            ));
        }
    }
    let (blob, declared) = file.blob(kind::LABEL_RANGES, 0)?;
    let label_ranges = decode_label_ranges(
        blob,
        declared,
        u32s(&file.map, node_labels),
        u32s(&file.map, label_order),
        &syms,
    )?;

    let triple_src = file.u32_sect(kind::TRIPLE_SRC, 0)?;
    let triple_dst = file.u32_sect(kind::TRIPLE_DST, 0)?;
    if triple_src.len != triple_dst.len {
        return Err(PersistError::Corrupt(format!(
            "triple arrays disagree: {} sources, {} destinations",
            triple_src.len, triple_dst.len
        )));
    }
    for sect in [triple_src, triple_dst] {
        for &id in u32s(&file.map, sect) {
            if id as usize >= n {
                return Err(PersistError::Corrupt(format!(
                    "triple endpoint {id} out of range"
                )));
            }
        }
    }
    let (blob, declared) = file.blob(kind::TRIPLE_RANGES, 0)?;
    let triple_ranges = decode_triple_ranges(
        blob,
        declared,
        u32s(&file.map, node_labels),
        u32s(&file.map, triple_src),
        u32s(&file.map, triple_dst),
        edge_count,
        RawSide {
            offsets: u32s(&file.map, out.offsets),
            labels: u32s(&file.map, out.labels),
            neighbors: u32s(&file.map, out.neighbors),
        },
        &syms,
    )?;

    Ok(MmapSnapshot {
        map: Arc::clone(&file.map),
        syms: Arc::new(syms),
        section_table: file.table.clone(),
        node_count: n,
        edge_count,
        epoch: file.header.epoch,
        attrs,
        label_ranges,
        triple_ranges,
        node_labels,
        out,
        inn,
        label_order,
        triple_src,
        triple_dst,
    })
}

impl GraphView for MmapSnapshot {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.node_count
    }

    fn label(&self, id: NodeId) -> Sym {
        self.syms.to_proc(self.arr(self.node_labels)[id.index()])
    }

    fn attr(&self, id: NodeId, name: Sym) -> Option<&Value> {
        self.attrs.get(&self.map, &self.syms, id.index()).get(name)
    }

    fn attrs_of(&self, id: NodeId) -> &AttrMap {
        self.attrs.get(&self.map, &self.syms, id.index())
    }

    fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        if !self.contains_node(src) || !self.contains_node(dst) {
            return false;
        }
        let Some(fid) = self.syms.to_file(label) else {
            return false;
        };
        let (out, inn) = (self.out_side(), self.in_side());
        if out.degree(src.index()) <= inn.degree(dst.index()) {
            out.contains(src.index(), fid, dst)
        } else {
            inn.contains(dst.index(), fid, src)
        }
    }

    fn out_degree(&self, id: NodeId) -> usize {
        self.out_side().degree(id.index())
    }

    fn in_degree(&self, id: NodeId) -> usize {
        self.in_side().degree(id.index())
    }

    fn label_count(&self, label: Sym) -> usize {
        self.nodes_with_label(label).len()
    }

    fn nodes_with_label_vec(&self, label: Sym) -> Vec<NodeId> {
        self.nodes_with_label(label).to_vec()
    }

    fn out_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.syms.to_file(label) {
            Some(fid) => self.out_side().labeled_range(id.index(), fid).len(),
            None => 0,
        }
    }

    fn in_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.syms.to_file(label) {
            Some(fid) => self.in_side().labeled_range(id.index(), fid).len(),
            None => 0,
        }
    }

    fn out_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        Some(self.out_neighbors_labeled(id, label))
    }

    fn in_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        Some(self.in_neighbors_labeled(id, label))
    }

    fn for_each_out_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        for &n in self.out_neighbors_labeled(id, label) {
            f(n);
        }
    }

    fn for_each_in_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        for &n in self.in_neighbors_labeled(id, label) {
            f(n);
        }
    }

    fn for_each_undirected(&self, id: NodeId, f: &mut dyn FnMut(NodeId, EdgeRef)) {
        let out = self.out_side();
        for i in out.node_range(id.index()) {
            let neighbor = NodeId(out.neighbors[i]);
            f(
                neighbor,
                EdgeRef::new(id, neighbor, self.syms.to_proc(out.labels[i])),
            );
        }
        let inn = self.in_side();
        for i in inn.node_range(id.index()) {
            let neighbor = NodeId(inn.neighbors[i]);
            f(
                neighbor,
                EdgeRef::new(neighbor, id, self.syms.to_proc(inn.labels[i])),
            );
        }
    }

    fn for_each_out(&self, id: NodeId, f: &mut dyn FnMut(NodeId, Sym)) {
        let out = self.out_side();
        for i in out.node_range(id.index()) {
            f(NodeId(out.neighbors[i]), self.syms.to_proc(out.labels[i]));
        }
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(EdgeRef)) {
        let out = self.out_side();
        for row in 0..self.node_count {
            let src = NodeId(row as u32);
            for i in out.node_range(row) {
                f(EdgeRef::new(
                    src,
                    NodeId(out.neighbors[i]),
                    self.syms.to_proc(out.labels[i]),
                ));
            }
        }
    }

    fn triple_run_len(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> Option<usize> {
        Some(self.triple_count(src_label, edge_label, dst_label))
    }

    fn triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        let &(start, end) = self
            .triple_ranges
            .get(&(src_label, edge_label, dst_label))
            .unwrap_or(&(0, 0));
        let side = if want_src {
            self.arr(self.triple_src)
        } else {
            self.arr(self.triple_dst)
        };
        let mut out: Vec<NodeId> = as_node_ids(&side[start as usize..end as usize]).to_vec();
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn labeled_triple_run_len(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
    ) -> Option<usize> {
        let mut total = 0usize;
        for (&(s, e, d), &(start, end)) in self.triple_ranges.iter() {
            if crate::csr::triple_matches((s, e, d), (src_label, edge_label, dst_label)) {
                total += (end - start) as usize;
            }
        }
        Some(total)
    }

    fn labeled_triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        let side = if want_src {
            self.arr(self.triple_src)
        } else {
            self.arr(self.triple_dst)
        };
        let mut out: Vec<NodeId> = Vec::new();
        for (&(s, e, d), &(start, end)) in self.triple_ranges.iter() {
            if crate::csr::triple_matches((s, e, d), (src_label, edge_label, dst_label)) {
                out.extend_from_slice(as_node_ids(&side[start as usize..end as usize]));
            }
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }
}

/// One fragment's mapped arrays inside a sharded snapshot file.
#[derive(Debug)]
struct MmapFragment {
    owned_count: usize,
    edge_entries: usize,
    local_to_global: Sect,
    global_to_local: Sect,
    node_labels: Sect,
    attrs: LazyAttrs,
    out: SideSect,
    inn: SideSect,
}

/// A memory-mapped [`crate::ShardedSnapshot`]: the global snapshot plus one
/// set of mapped per-fragment CSR arrays, loaded from a file written by
/// [`SnapshotWriter::write_sharded`](crate::persist::SnapshotWriter::write_sharded).
///
/// Implements [`ShardedRead`], so `pdect_sharded` / `pinc_dect_sharded`
/// run over it exactly as over the in-memory sharded snapshot.
#[derive(Debug)]
pub struct MmapShardedSnapshot {
    global: MmapSnapshot,
    partition: Partition,
    halo_depth: usize,
    fragments: Vec<MmapFragment>,
}

impl MmapShardedSnapshot {
    /// Memory-map a sharded snapshot file.
    pub fn load(path: &Path) -> Result<MmapShardedSnapshot, PersistError> {
        let _span = ngd_obs::span!("persist.mmap_load");
        let file = FileData::open(path)?;
        if file.header.file_kind != file_kind::SHARDED {
            return Err(PersistError::WrongKind {
                expected: file_kind::SHARDED,
                found: file.header.file_kind,
            });
        }
        let global = decode_global(&file)?;
        let n = global.node_count;
        let sym_count = global.syms.len() as u32;

        let (blob, _) = file.blob(kind::SHARD_META, 0)?;
        let mut reader = BlobReader::new(blob, "shard metadata");
        let halo_depth = reader.u64()? as usize;
        let fragment_count = reader.u32()? as usize;
        reader.finish()?;
        // The writer can never produce zero fragments (`freeze_sharded(0,
        // ..)` behaves like 1); rejecting it here keeps the detectors'
        // `worker_view(0)` infallible.
        if fragment_count == 0 {
            return Err(PersistError::Corrupt(
                "sharded snapshot declares zero fragments".into(),
            ));
        }

        let (blob, declared) = file.blob(kind::PARTITION, 0)?;
        let partition = decode_partition(blob, declared, n, fragment_count, &global.syms)?;

        let mut fragments = Vec::with_capacity(fragment_count);
        for idx in 0..fragment_count {
            fragments.push(decode_fragment(&file, idx, n, sym_count, &global.syms)?);
        }
        Ok(MmapShardedSnapshot {
            global,
            partition,
            halo_depth,
            fragments,
        })
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// The snapshot epoch recorded in the file header (see
    /// [`MmapSnapshot::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.global.epoch()
    }

    /// The halo replication depth the shards were built with.
    pub fn halo_depth(&self) -> usize {
        self.halo_depth
    }

    /// The partition the shards were built from.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The mapped global snapshot backing remote reads.
    pub fn global(&self) -> &MmapSnapshot {
        &self.global
    }

    /// Fragment a work item anchored at `node` routes to.
    pub fn route_of(&self, node: NodeId) -> usize {
        self.partition.route_of(node)
    }

    /// A worker's [`GraphView`] over fragment `idx`.
    pub fn fragment_view(&self, idx: usize) -> MmapFragmentView<'_> {
        MmapFragmentView {
            shard: self,
            fragment: &self.fragments[idx],
            remote_fetches: AtomicU64::new(0),
        }
    }

    /// Fragment `idx`'s mapped global→local translation array
    /// (`u32::MAX` = not materialised here).  The compaction writer uses
    /// it to test in O(1) whether a dirty global node is replicated in a
    /// fragment without decoding the fragment.
    pub(crate) fn raw_fragment_g2l(&self, idx: usize) -> &[u32] {
        u32s(&self.global.map, self.fragments[idx].global_to_local)
    }
}

fn decode_edges(
    reader: &mut BlobReader<'_>,
    node_bound: usize,
    syms: &SymBridge,
) -> Result<Vec<EdgeRef>, PersistError> {
    let count = reader.u32()?;
    let count = reader.record_count(count, 12)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let src = reader.u32()?;
        let dst = reader.u32()?;
        let label = syms.to_proc_checked(reader.u32()?)?;
        if src as usize >= node_bound || dst as usize >= node_bound {
            return Err(PersistError::Corrupt(format!(
                "partition edge {src}->{dst} out of range"
            )));
        }
        out.push(EdgeRef::new(NodeId(src), NodeId(dst), label));
    }
    Ok(out)
}

fn decode_partition(
    blob: &[u8],
    declared: usize,
    node_count: usize,
    fragment_count: usize,
    syms: &SymBridge,
) -> Result<Partition, PersistError> {
    let mut reader = BlobReader::new(blob, "partition");
    let strategy = match reader.u8()? {
        0 => PartitionStrategy::EdgeCut,
        1 => PartitionStrategy::VertexCut,
        other => {
            return Err(PersistError::Corrupt(format!(
                "unknown partition strategy {other}"
            )))
        }
    };
    let owner_len = reader.u32()? as usize;
    if owner_len != node_count {
        return Err(PersistError::Corrupt(format!(
            "partition owns {owner_len} nodes of {node_count}"
        )));
    }
    let mut owner = Vec::with_capacity(owner_len);
    for _ in 0..owner_len {
        let frag = reader.u32()? as usize;
        if frag >= fragment_count.max(1) {
            return Err(PersistError::Corrupt(format!(
                "node owner {frag} out of range ({fragment_count} fragments)"
            )));
        }
        owner.push(frag);
    }
    let count = reader.u32()? as usize;
    if count != fragment_count || count != declared {
        return Err(PersistError::Corrupt(format!(
            "partition encodes {count} fragments, metadata says {fragment_count}"
        )));
    }
    let mut fragments = Vec::with_capacity(count);
    for expected_id in 0..count {
        let id = reader.u32()? as usize;
        if id != expected_id {
            return Err(PersistError::Corrupt(format!(
                "fragment {expected_id} encodes id {id}"
            )));
        }
        let node_len = reader.u32()?;
        let node_len = reader.record_count(node_len, 4)?;
        let mut nodes = Vec::with_capacity(node_len);
        for _ in 0..node_len {
            let node = reader.u32()?;
            if node as usize >= node_count {
                return Err(PersistError::Corrupt(format!(
                    "fragment node {node} out of range"
                )));
            }
            nodes.push(NodeId(node));
        }
        let border_len = reader.u32()?;
        let border_len = reader.record_count(border_len, 4)?;
        let mut border_nodes = Vec::with_capacity(border_len);
        for _ in 0..border_len {
            let node = reader.u32()?;
            if node as usize >= node_count {
                return Err(PersistError::Corrupt(format!(
                    "border node {node} out of range"
                )));
            }
            border_nodes.push(NodeId(node));
        }
        let internal_edges = decode_edges(&mut reader, node_count, syms)?;
        fragments.push(Fragment {
            id,
            nodes,
            internal_edges,
            border_nodes,
        });
    }
    let crossing_edges = decode_edges(&mut reader, node_count, syms)?;
    reader.finish()?;
    Ok(Partition {
        strategy,
        fragments,
        owner,
        crossing_edges,
    })
}

fn decode_fragment(
    file: &FileData,
    idx: usize,
    node_count: usize,
    sym_count: u32,
    syms: &SymBridge,
) -> Result<MmapFragment, PersistError> {
    let owner = (idx + 1) as u32;
    let (blob, _) = file.blob(kind::FRAG_META, owner)?;
    let mut reader = BlobReader::new(blob, "fragment metadata");
    let id = reader.u32()? as usize;
    let owned_count = reader.u32()? as usize;
    let edge_entries = reader.u64()? as usize;
    reader.finish()?;
    if id != idx {
        return Err(PersistError::Corrupt(format!(
            "fragment {idx} encodes id {id}"
        )));
    }

    let local_to_global = file.u32_sect(kind::FRAG_LOCAL_TO_GLOBAL, owner)?;
    let global_to_local = file.u32_sect(kind::FRAG_GLOBAL_TO_LOCAL, owner)?;
    let rows = local_to_global.len;
    if owned_count > rows {
        return Err(PersistError::Corrupt(format!(
            "fragment {idx} owns {owned_count} of {rows} materialised rows"
        )));
    }
    if global_to_local.len != node_count {
        return Err(PersistError::Corrupt(format!(
            "fragment {idx}: translation table covers {} of {node_count} nodes",
            global_to_local.len
        )));
    }
    let l2g = u32s(&file.map, local_to_global);
    let g2l = u32s(&file.map, global_to_local);
    for (row, &gid) in l2g.iter().enumerate() {
        if gid as usize >= node_count || g2l[gid as usize] != row as u32 {
            return Err(PersistError::Corrupt(format!(
                "fragment {idx}: row {row} and global id {gid} do not round-trip"
            )));
        }
    }
    for (gid, &row) in g2l.iter().enumerate() {
        if row != u32::MAX && (row as usize >= rows || l2g[row as usize] as usize != gid) {
            return Err(PersistError::Corrupt(format!(
                "fragment {idx}: global id {gid} maps to bad row {row}"
            )));
        }
    }

    let node_labels = file.u32_sect(kind::FRAG_NODE_LABELS, owner)?;
    if node_labels.len != rows {
        return Err(PersistError::Corrupt(format!(
            "fragment {idx}: {} labels for {rows} rows",
            node_labels.len
        )));
    }
    for &label in u32s(&file.map, node_labels) {
        if label >= sym_count {
            return Err(PersistError::Corrupt(format!(
                "fragment {idx}: label id {label} out of range"
            )));
        }
    }
    let attrs = LazyAttrs::load(
        file,
        kind::FRAG_NODE_ATTRS,
        owner,
        rows,
        syms,
        "fragment attributes",
    )?;

    let out = file.side(
        (
            kind::FRAG_OUT_OFFSETS,
            kind::FRAG_OUT_LABELS,
            kind::FRAG_OUT_NEIGHBORS,
        ),
        owner,
    )?;
    let out_entries = validate_side(
        &file.map,
        out,
        rows,
        node_count as u32,
        sym_count,
        "fragment out CSR",
    )?;
    if out_entries != edge_entries {
        return Err(PersistError::Corrupt(format!(
            "fragment {idx}: {out_entries} out entries, metadata says {edge_entries}"
        )));
    }
    let inn = file.side(
        (
            kind::FRAG_IN_OFFSETS,
            kind::FRAG_IN_LABELS,
            kind::FRAG_IN_NEIGHBORS,
        ),
        owner,
    )?;
    validate_side(
        &file.map,
        inn,
        rows,
        node_count as u32,
        sym_count,
        "fragment in CSR",
    )?;

    Ok(MmapFragment {
        owned_count,
        edge_entries,
        local_to_global,
        global_to_local,
        node_labels,
        attrs,
        out,
        inn,
    })
}

/// A detector worker's read view of one mapped fragment: local reads come
/// from the fragment's mapped arrays, everything else falls back to the
/// mapped global snapshot and is counted as a cross-fragment candidate
/// fetch — the mmap twin of [`crate::FragmentView`].
#[derive(Debug)]
pub struct MmapFragmentView<'a> {
    shard: &'a MmapShardedSnapshot,
    fragment: &'a MmapFragment,
    remote_fetches: AtomicU64,
}

impl<'a> MmapFragmentView<'a> {
    /// Global ids of the rows materialised in this fragment (owned + halo).
    pub fn materialized_nodes(&self) -> &'a [NodeId] {
        as_node_ids(u32s(&self.shard.global.map, self.fragment.local_to_global))
    }

    /// Global ids of the owned rows.
    pub fn owned_nodes(&self) -> &'a [NodeId] {
        &self.materialized_nodes()[..self.fragment.owned_count]
    }

    /// Number of out-edge entries replicated into this fragment.
    pub fn edge_entries(&self) -> usize {
        self.fragment.edge_entries
    }

    /// Is the node's adjacency materialised in this fragment?
    pub fn is_local(&self, id: NodeId) -> bool {
        self.local_row(id).is_some()
    }

    #[inline]
    fn global(&self) -> &'a MmapSnapshot {
        &self.shard.global
    }

    #[inline]
    fn local_row(&self, id: NodeId) -> Option<usize> {
        match u32s(&self.shard.global.map, self.fragment.global_to_local).get(id.index()) {
            Some(&row) if row != u32::MAX => Some(row as usize),
            _ => None,
        }
    }

    #[inline]
    fn count_remote(&self) {
        self.remote_fetches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn out_side(&self) -> RawSide<'a> {
        let map = &self.shard.global.map;
        RawSide {
            offsets: u32s(map, self.fragment.out.offsets),
            labels: u32s(map, self.fragment.out.labels),
            neighbors: u32s(map, self.fragment.out.neighbors),
        }
    }

    #[inline]
    fn in_side(&self) -> RawSide<'a> {
        let map = &self.shard.global.map;
        RawSide {
            offsets: u32s(map, self.fragment.inn.offsets),
            labels: u32s(map, self.fragment.inn.labels),
            neighbors: u32s(map, self.fragment.inn.neighbors),
        }
    }

    #[inline]
    fn to_file(&self, label: Sym) -> Option<u32> {
        self.shard.global.syms.to_file(label)
    }
}

impl<'a> RemoteAccounting for MmapFragmentView<'a> {
    fn remote_fetches(&self) -> u64 {
        self.remote_fetches.load(Ordering::Relaxed)
    }
}

impl<'a> GraphView for MmapFragmentView<'a> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self.global())
    }

    fn edge_count(&self) -> usize {
        GraphView::edge_count(self.global())
    }

    fn contains_node(&self, id: NodeId) -> bool {
        GraphView::contains_node(self.global(), id)
    }

    fn label(&self, id: NodeId) -> Sym {
        match self.local_row(id) {
            Some(row) => {
                let fid = u32s(&self.shard.global.map, self.fragment.node_labels)[row];
                self.shard.global.syms.to_proc(fid)
            }
            None => GraphView::label(self.global(), id),
        }
    }

    fn attr(&self, id: NodeId, name: Sym) -> Option<&Value> {
        match self.local_row(id) {
            Some(row) => {
                let global = &self.shard.global;
                self.fragment
                    .attrs
                    .get(&global.map, &global.syms, row)
                    .get(name)
            }
            None => GraphView::attr(self.global(), id, name),
        }
    }

    fn attrs_of(&self, id: NodeId) -> &AttrMap {
        match self.local_row(id) {
            Some(row) => {
                let global = &self.shard.global;
                self.fragment.attrs.get(&global.map, &global.syms, row)
            }
            None => GraphView::attrs_of(self.global(), id),
        }
    }

    fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        let Some(fid) = self.to_file(label) else {
            return false;
        };
        if let Some(row) = self.local_row(src) {
            return self.out_side().contains(row, fid, dst);
        }
        if let Some(row) = self.local_row(dst) {
            return self.in_side().contains(row, fid, src);
        }
        if !self.contains_node(src) || !self.contains_node(dst) {
            return false;
        }
        self.count_remote();
        GraphView::has_edge(self.global(), src, dst, label)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        match self.local_row(id) {
            Some(row) => self.out_side().degree(row),
            None => {
                self.count_remote();
                GraphView::out_degree(self.global(), id)
            }
        }
    }

    fn in_degree(&self, id: NodeId) -> usize {
        match self.local_row(id) {
            Some(row) => self.in_side().degree(row),
            None => {
                self.count_remote();
                GraphView::in_degree(self.global(), id)
            }
        }
    }

    fn label_count(&self, label: Sym) -> usize {
        // Replicated dictionary — global, unaccounted.
        GraphView::label_count(self.global(), label)
    }

    fn nodes_with_label_vec(&self, label: Sym) -> Vec<NodeId> {
        GraphView::nodes_with_label_vec(self.global(), label)
    }

    fn out_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.local_row(id) {
            Some(row) => match self.to_file(label) {
                Some(fid) => self.out_side().labeled_range(row, fid).len(),
                None => 0,
            },
            None => {
                self.count_remote();
                GraphView::out_labeled_count(self.global(), id, label)
            }
        }
    }

    fn in_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.local_row(id) {
            Some(row) => match self.to_file(label) {
                Some(fid) => self.in_side().labeled_range(row, fid).len(),
                None => 0,
            },
            None => {
                self.count_remote();
                GraphView::in_labeled_count(self.global(), id, label)
            }
        }
    }

    fn out_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        match self.local_row(id) {
            Some(row) => Some(match self.to_file(label) {
                Some(fid) => self.out_side().labeled_slice(row, fid),
                None => &[],
            }),
            None => {
                self.count_remote();
                GraphView::out_labeled_slice(self.global(), id, label)
            }
        }
    }

    fn in_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        match self.local_row(id) {
            Some(row) => Some(match self.to_file(label) {
                Some(fid) => self.in_side().labeled_slice(row, fid),
                None => &[],
            }),
            None => {
                self.count_remote();
                GraphView::in_labeled_slice(self.global(), id, label)
            }
        }
    }

    fn for_each_out_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        match self.local_row(id) {
            Some(row) => {
                if let Some(fid) = self.to_file(label) {
                    for &n in self.out_side().labeled_slice(row, fid) {
                        f(n);
                    }
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_out_labeled(self.global(), id, label, f);
            }
        }
    }

    fn for_each_in_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        match self.local_row(id) {
            Some(row) => {
                if let Some(fid) = self.to_file(label) {
                    for &n in self.in_side().labeled_slice(row, fid) {
                        f(n);
                    }
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_in_labeled(self.global(), id, label, f);
            }
        }
    }

    fn for_each_undirected(&self, id: NodeId, f: &mut dyn FnMut(NodeId, EdgeRef)) {
        match self.local_row(id) {
            Some(row) => {
                let syms = &self.shard.global.syms;
                let out = self.out_side();
                for i in out.node_range(row) {
                    let neighbor = NodeId(out.neighbors[i]);
                    f(
                        neighbor,
                        EdgeRef::new(id, neighbor, syms.to_proc(out.labels[i])),
                    );
                }
                let inn = self.in_side();
                for i in inn.node_range(row) {
                    let neighbor = NodeId(inn.neighbors[i]);
                    f(
                        neighbor,
                        EdgeRef::new(neighbor, id, syms.to_proc(inn.labels[i])),
                    );
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_undirected(self.global(), id, f);
            }
        }
    }

    fn for_each_out(&self, id: NodeId, f: &mut dyn FnMut(NodeId, Sym)) {
        match self.local_row(id) {
            Some(row) => {
                let syms = &self.shard.global.syms;
                let out = self.out_side();
                for i in out.node_range(row) {
                    f(NodeId(out.neighbors[i]), syms.to_proc(out.labels[i]));
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_out(self.global(), id, f);
            }
        }
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(EdgeRef)) {
        // Whole-graph iteration is a global scan by definition.
        GraphView::for_each_edge(self.global(), f)
    }

    fn triple_run_len(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> Option<usize> {
        GraphView::triple_run_len(self.global(), src_label, edge_label, dst_label)
    }

    fn triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        GraphView::triple_endpoints(self.global(), src_label, edge_label, dst_label, want_src)
    }

    fn labeled_triple_run_len(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
    ) -> Option<usize> {
        GraphView::labeled_triple_run_len(self.global(), src_label, edge_label, dst_label)
    }

    fn labeled_triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        GraphView::labeled_triple_endpoints(
            self.global(),
            src_label,
            edge_label,
            dst_label,
            want_src,
        )
    }
}

impl ShardedRead for MmapShardedSnapshot {
    type Global = MmapSnapshot;
    type Worker<'a> = MmapFragmentView<'a>;

    fn global_view(&self) -> &MmapSnapshot {
        &self.global
    }

    fn shard_count(&self) -> usize {
        self.fragments.len()
    }

    fn route_to(&self, node: NodeId) -> usize {
        self.route_of(node)
    }

    fn shard_partition(&self) -> &Partition {
        &self.partition
    }

    fn worker_view(&self, idx: usize) -> MmapFragmentView<'_> {
        self.fragment_view(idx)
    }
}
