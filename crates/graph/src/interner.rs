//! Process-wide string interning for labels and attribute names.
//!
//! Labels from the alphabet `Γ` and attribute names from `Θ` appear in
//! graphs, patterns, rules and generators alike.  Interning them once into
//! compact [`Sym`] handles makes label comparisons during matching a single
//! `u32` compare and keeps per-node storage small.
//!
//! The interner is a global table guarded by a [`std::sync::RwLock`];
//! interned strings are leaked (they live for the process lifetime), which
//! is the usual compiler-style trade-off: the label alphabet is tiny
//! (hundreds of symbols) compared to the graphs (millions of nodes).

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string handle.
///
/// Two `Sym`s are equal iff the strings they intern are equal, so symbol
/// comparison never needs to touch the underlying bytes.
///
/// Symbols are **process-local**: the id depends on interning order, so a
/// `Sym` must never be persisted raw.  The snapshot format
/// ([`crate::persist`]) stores a string table and file-local symbol ids
/// instead, translating at the boundary.  `repr(transparent)` over `u32`
/// is relied upon when the in-memory CSR arrays are serialized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Sym(pub u32);

impl Sym {
    /// Resolve the symbol back to its string form.
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({}:{:?})", self.0, resolve(*self))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

impl ngd_json::ToJson for Sym {
    fn to_json(&self) -> ngd_json::Json {
        ngd_json::Json::Str(resolve(*self).to_owned())
    }
}

impl ngd_json::FromJson for Sym {
    fn from_json(value: &ngd_json::Json) -> ngd_json::Result<Self> {
        value.as_str().map(intern)
    }
}

struct Interner {
    map: HashMap<&'static str, Sym>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        let mut interner = Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        };
        // Slot 0 is reserved for the wildcard label `_` so that `WILDCARD`
        // is a constant rather than a lazily-initialised symbol.
        interner.intern_str("_");
        interner
    }

    fn intern_str(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(leaked);
        self.map.insert(leaked, sym);
        sym
    }
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

/// The wildcard label `_` (matches any label during pattern matching).
pub const WILDCARD: Sym = Sym(0);

/// Intern a string, returning its symbol.
///
/// Calling `intern` with the same string always returns the same [`Sym`].
pub fn intern(s: &str) -> Sym {
    {
        let guard = interner().read().expect("interner lock poisoned");
        if let Some(&sym) = guard.map.get(s) {
            return sym;
        }
    }
    interner()
        .write()
        .expect("interner lock poisoned")
        .intern_str(s)
}

/// Resolve a symbol back to its string.
///
/// # Panics
///
/// Panics if the symbol was not produced by [`intern`] in this process.
pub fn resolve(sym: Sym) -> &'static str {
    let guard = interner().read().expect("interner lock poisoned");
    guard
        .strings
        .get(sym.0 as usize)
        .copied()
        .expect("symbol not interned in this process")
}

/// Number of distinct interned symbols (useful in tests and stats).
pub fn interned_count() -> usize {
    interner()
        .read()
        .expect("interner lock poisoned")
        .strings
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("place");
        let b = intern("place");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "place");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("alpha-label");
        let b = intern("beta-label");
        assert_ne!(a, b);
        assert_eq!(resolve(a), "alpha-label");
        assert_eq!(resolve(b), "beta-label");
    }

    #[test]
    fn wildcard_is_slot_zero() {
        assert_eq!(intern("_"), WILDCARD);
        assert_eq!(resolve(WILDCARD), "_");
    }

    #[test]
    fn symbols_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for name in ["a", "b", "c", "a"] {
            set.insert(intern(name));
        }
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn json_roundtrip_preserves_string() {
        let sym = intern("follower");
        let json = ngd_json::to_string(&sym);
        assert_eq!(json, "\"follower\"");
        let back: Sym = ngd_json::from_str(&json).unwrap();
        assert_eq!(back, sym);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("concurrent-label")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
