//! Graph fragmentation across `p` workers.
//!
//! The paper fragments graphs with METIS (edge-cut) or vertex-cut
//! partitioning and distributes the fragments over `p` processors
//! (Section 6.3).  This module provides two light-weight substitutes:
//!
//! * [`EdgeCutPartitioner`] — a greedy BFS-grown balanced edge-cut: nodes
//!   are assigned to fragments in BFS order so that connected regions stay
//!   together, with a hard balance cap of `⌈|V|/p⌉` nodes per fragment;
//! * [`VertexCutPartitioner`] — a hash-based vertex-cut: each *edge* is
//!   assigned to a fragment, and nodes incident to edges in several
//!   fragments become replicated "entry" nodes.
//!
//! Both produce a [`Partition`] exposing per-fragment membership, the set
//!   of crossing (cut) edges, and balance/cut statistics.  Partition quality
//! only affects constant factors in the detectors' communication cost, so a
//! greedy partitioner preserves the experimental behaviour that matters
//! (balanced work, bounded cut fraction); see DESIGN.md §5.

use crate::graph::{EdgeRef, NodeId};
use crate::view::GraphView;
use std::collections::VecDeque;

/// Which partitioning strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Balanced BFS-grown edge-cut (METIS substitute).
    EdgeCut,
    /// Hash-based vertex-cut.
    VertexCut,
}

ngd_json::impl_json_unit_enum!(PartitionStrategy { EdgeCut, VertexCut });

/// One fragment of a partitioned graph.
#[derive(Debug, Clone, Default)]
pub struct Fragment {
    /// Fragment index in `0..p`.
    pub id: usize,
    /// Nodes owned by this fragment.
    pub nodes: Vec<NodeId>,
    /// Edges whose *both* endpoints are owned by this fragment
    /// (edge-cut) or edges assigned to this fragment (vertex-cut).
    pub internal_edges: Vec<EdgeRef>,
    /// Border nodes: nodes of this fragment incident to at least one
    /// crossing edge (edge-cut), or replicated nodes (vertex-cut).
    pub border_nodes: Vec<NodeId>,
}

impl Fragment {
    /// Number of owned nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of internal edges.
    pub fn edge_count(&self) -> usize {
        self.internal_edges.len()
    }
}

ngd_json::impl_json_struct!(Fragment {
    id,
    nodes,
    internal_edges,
    border_nodes
});

/// A partition of a graph into `p` fragments.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The strategy that produced this partition.
    pub strategy: PartitionStrategy,
    /// Fragments, indexed by fragment id.
    pub fragments: Vec<Fragment>,
    /// For each node, the fragment that owns it (primary owner under
    /// vertex-cut).
    pub owner: Vec<usize>,
    /// Edges whose endpoints are owned by different fragments.
    pub crossing_edges: Vec<EdgeRef>,
}

impl Partition {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Owning fragment of a node.
    ///
    /// Panics if `node` was not part of the partitioned graph; use
    /// [`Partition::route_of`] when the node may be unknown (e.g. a node
    /// introduced by a pending [`crate::BatchUpdate`]).
    pub fn owner_of(&self, node: NodeId) -> usize {
        self.owner[node.index()]
    }

    /// Fragment a work item anchored at `node` should be routed to: the
    /// owner when the node was partitioned, a deterministic hash-spread
    /// fragment otherwise (nodes introduced after partitioning, e.g. by a
    /// batch update, have no owner yet).
    pub fn route_of(&self, node: NodeId) -> usize {
        self.owner
            .get(node.index())
            .copied()
            .unwrap_or_else(|| node.index() % self.fragments.len().max(1))
    }

    /// Fraction of edges that cross fragments (the "cut ratio").
    pub fn cut_ratio<G: GraphView + ?Sized>(&self, graph: &G) -> f64 {
        if graph.edge_count() == 0 {
            return 0.0;
        }
        self.crossing_edges.len() as f64 / graph.edge_count() as f64
    }

    /// Balance factor: max fragment size divided by ideal size `|V|/p`.
    /// 1.0 is perfectly balanced.
    pub fn balance(&self) -> f64 {
        let total: usize = self.fragments.iter().map(Fragment::node_count).sum();
        if total == 0 || self.fragments.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.fragments.len() as f64;
        let max = self
            .fragments
            .iter()
            .map(Fragment::node_count)
            .max()
            .unwrap_or(0) as f64;
        max / ideal
    }
}

/// Greedy BFS-grown balanced edge-cut partitioner.
#[derive(Debug, Clone, Copy)]
pub struct EdgeCutPartitioner {
    /// Number of fragments to produce.
    pub parts: usize,
}

impl EdgeCutPartitioner {
    /// Create a partitioner producing `parts` fragments.  `parts = 0` is
    /// treated as 1 (a partition must have at least one fragment).
    pub fn new(parts: usize) -> Self {
        EdgeCutPartitioner {
            parts: parts.max(1),
        }
    }

    /// Partition any [`GraphView`] — the detectors hand it a frozen
    /// [`crate::CsrSnapshot`], whose contiguous adjacency runs this BFS
    /// walks without touching per-node heap allocations.
    ///
    /// Degenerate inputs are well-defined: `parts = 0` behaves like 1, and
    /// `parts > |V|` yields exactly `parts` fragments of which the trailing
    /// ones are empty (so `p` workers can always be spawned 1:1 against the
    /// fragments).
    pub fn partition<G: GraphView + ?Sized>(&self, graph: &G) -> Partition {
        let n = graph.node_count();
        let p = self.parts.max(1);
        let cap = n.div_ceil(p).max(1);
        let mut owner = vec![usize::MAX; n];
        let mut fragments: Vec<Fragment> = (0..p)
            .map(|id| Fragment {
                id,
                ..Fragment::default()
            })
            .collect();

        // Grow fragments one after another with BFS so that connected
        // regions stay together; fall back to the next unassigned node when
        // the frontier empties (disconnected graphs).
        let mut current = 0usize;
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut next_unassigned = 0u32;
        let mut assigned = 0usize;
        while assigned < n {
            let seed = if let Some(node) = queue.pop_front() {
                node
            } else {
                while (next_unassigned as usize) < n
                    && owner[next_unassigned as usize] != usize::MAX
                {
                    next_unassigned += 1;
                }
                NodeId(next_unassigned)
            };
            if owner[seed.index()] != usize::MAX {
                continue;
            }
            // If the current fragment is full, move to the next one.
            if fragments[current].nodes.len() >= cap && current + 1 < p {
                current += 1;
                // Restart growth from this seed in the new fragment.
            }
            owner[seed.index()] = current;
            fragments[current].nodes.push(seed);
            assigned += 1;
            graph.for_each_undirected(seed, &mut |next, _| {
                if owner[next.index()] == usize::MAX {
                    queue.push_back(next);
                }
            });
        }

        Self::finish_edge_cut(graph, owner, fragments)
    }

    fn finish_edge_cut<G: GraphView + ?Sized>(
        graph: &G,
        owner: Vec<usize>,
        mut fragments: Vec<Fragment>,
    ) -> Partition {
        let mut crossing = Vec::new();
        let mut is_border = vec![false; graph.node_count()];
        graph.for_each_edge(&mut |edge| {
            let so = owner[edge.src.index()];
            let do_ = owner[edge.dst.index()];
            if so == do_ {
                fragments[so].internal_edges.push(edge);
            } else {
                crossing.push(edge);
                is_border[edge.src.index()] = true;
                is_border[edge.dst.index()] = true;
            }
        });
        for (idx, &border) in is_border.iter().enumerate() {
            if border {
                let node = NodeId(idx as u32);
                fragments[owner[idx]].border_nodes.push(node);
            }
        }
        Partition {
            strategy: PartitionStrategy::EdgeCut,
            fragments,
            owner,
            crossing_edges: crossing,
        }
    }
}

/// Hash-based vertex-cut partitioner: edges are assigned to fragments,
/// nodes incident to several fragments are replicated.
#[derive(Debug, Clone, Copy)]
pub struct VertexCutPartitioner {
    /// Number of fragments to produce.
    pub parts: usize,
}

impl VertexCutPartitioner {
    /// Create a partitioner producing `parts` fragments.  `parts = 0` is
    /// treated as 1 (a partition must have at least one fragment).
    pub fn new(parts: usize) -> Self {
        VertexCutPartitioner {
            parts: parts.max(1),
        }
    }

    pub(crate) fn edge_fragment(&self, edge: &EdgeRef) -> usize {
        // Deterministic mixed hash of the endpoints; label excluded so that
        // parallel edges between the same endpoints co-locate.
        let mut h = (edge.src.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= (edge.dst.0 as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        h ^= h >> 29;
        (h % self.parts.max(1) as u64) as usize
    }

    /// Partition any [`GraphView`].  Like the edge-cut partitioner, `parts
    /// = 0` behaves like 1 and `parts > |V|` leaves some fragments empty.
    pub fn partition<G: GraphView + ?Sized>(&self, graph: &G) -> Partition {
        let n = graph.node_count();
        let p = self.parts.max(1);
        let mut fragments: Vec<Fragment> = (0..p)
            .map(|id| Fragment {
                id,
                ..Fragment::default()
            })
            .collect();
        // membership[v] = bitmask (as Vec<bool>) of fragments touching v.
        let mut membership = vec![vec![false; p]; n];
        graph.for_each_edge(&mut |edge| {
            let f = self.edge_fragment(&edge);
            fragments[f].internal_edges.push(edge);
            membership[edge.src.index()][f] = true;
            membership[edge.dst.index()][f] = true;
        });
        let mut owner = vec![0usize; n];
        let mut crossing = Vec::new();
        for (idx, frags) in membership.iter().enumerate() {
            let node = NodeId(idx as u32);
            let touching: Vec<usize> = frags
                .iter()
                .enumerate()
                .filter_map(|(f, &t)| if t { Some(f) } else { None })
                .collect();
            // Primary owner: lowest-index touching fragment; isolated nodes
            // go to fragment chosen by node id for balance.
            let own = touching.first().copied().unwrap_or(idx % p);
            owner[idx] = own;
            fragments[own].nodes.push(node);
            if touching.len() > 1 {
                for &f in &touching {
                    fragments[f].border_nodes.push(node);
                }
            }
        }
        // Crossing edges under vertex-cut: edges incident to a replicated
        // endpoint (they require entry/exit-node messages).
        graph.for_each_edge(&mut |edge| {
            let src_rep = membership[edge.src.index()].iter().filter(|&&t| t).count() > 1;
            let dst_rep = membership[edge.dst.index()].iter().filter(|&&t| t).count() > 1;
            if src_rep || dst_rep {
                crossing.push(edge);
            }
        });
        Partition {
            strategy: PartitionStrategy::VertexCut,
            fragments,
            owner,
            crossing_edges: crossing,
        }
    }
}

ngd_json::impl_json_struct!(Partition {
    strategy,
    fragments,
    owner,
    crossing_edges
});

/// Partition a graph with the given strategy.
pub fn partition<G: GraphView + ?Sized>(
    graph: &G,
    parts: usize,
    strategy: PartitionStrategy,
) -> Partition {
    match strategy {
        PartitionStrategy::EdgeCut => EdgeCutPartitioner::new(parts).partition(graph),
        PartitionStrategy::VertexCut => VertexCutPartitioner::new(parts).partition(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;
    use crate::graph::Graph;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| g.add_node_named("node", AttrMap::new()))
            .collect();
        for i in 0..n {
            g.add_edge_named(nodes[i], nodes[(i + 1) % n], "next")
                .unwrap();
        }
        g
    }

    #[test]
    fn edge_cut_covers_all_nodes_exactly_once() {
        let g = ring(100);
        let part = EdgeCutPartitioner::new(4).partition(&g);
        assert_eq!(part.fragment_count(), 4);
        let total: usize = part.fragments.iter().map(Fragment::node_count).sum();
        assert_eq!(total, 100);
        // every node has an owner consistent with fragment membership
        for frag in &part.fragments {
            for &node in &frag.nodes {
                assert_eq!(part.owner_of(node), frag.id);
            }
        }
    }

    #[test]
    fn edge_cut_is_balanced() {
        let g = ring(101);
        let part = EdgeCutPartitioner::new(4).partition(&g);
        assert!(part.balance() <= 1.15, "balance {}", part.balance());
    }

    #[test]
    fn edge_cut_on_ring_has_small_cut() {
        let g = ring(80);
        let part = EdgeCutPartitioner::new(4).partition(&g);
        // A ring split into 4 contiguous arcs has exactly 4 crossing edges.
        assert!(
            part.crossing_edges.len() <= 8,
            "{}",
            part.crossing_edges.len()
        );
        assert!(part.cut_ratio(&g) < 0.15);
    }

    #[test]
    fn edge_and_crossing_edge_counts_add_up() {
        let g = ring(60);
        for p in [1, 2, 3, 5, 8] {
            let part = EdgeCutPartitioner::new(p).partition(&g);
            let internal: usize = part.fragments.iter().map(Fragment::edge_count).sum();
            assert_eq!(internal + part.crossing_edges.len(), g.edge_count());
        }
    }

    #[test]
    fn single_fragment_has_no_crossing_edges() {
        let g = ring(10);
        let part = EdgeCutPartitioner::new(1).partition(&g);
        assert!(part.crossing_edges.is_empty());
        assert_eq!(part.fragments[0].node_count(), 10);
    }

    #[test]
    fn more_parts_than_nodes_yields_empty_fragments() {
        let g = ring(3);
        let part = EdgeCutPartitioner::new(10).partition(&g);
        // Exactly the requested fragment count, trailing fragments empty.
        assert_eq!(part.fragment_count(), 10);
        assert_eq!(
            part.fragments
                .iter()
                .map(Fragment::node_count)
                .sum::<usize>(),
            3
        );
        assert!(part.fragments.iter().all(|f| f.node_count() <= 1));
        assert!(part.balance().is_finite());
        assert!(part.cut_ratio(&g).is_finite());
        let v = VertexCutPartitioner::new(10).partition(&g);
        assert_eq!(v.fragment_count(), 10);
        assert_eq!(
            v.fragments.iter().map(Fragment::edge_count).sum::<usize>(),
            g.edge_count()
        );
    }

    #[test]
    fn zero_parts_behaves_like_one() {
        let g = ring(6);
        for part in [
            EdgeCutPartitioner { parts: 0 }.partition(&g),
            VertexCutPartitioner { parts: 0 }.partition(&g),
        ] {
            assert_eq!(part.fragment_count(), 1);
            assert_eq!(part.fragments[0].node_count(), 6);
            assert!(part.crossing_edges.is_empty());
            assert_eq!(part.balance(), 1.0);
            assert!(part.cut_ratio(&g).is_finite());
        }
    }

    #[test]
    fn route_of_handles_unknown_nodes() {
        let g = ring(8);
        let part = EdgeCutPartitioner::new(3).partition(&g);
        for id in g.node_ids() {
            assert_eq!(part.route_of(id), part.owner_of(id));
        }
        // Nodes beyond the partitioned graph spread deterministically.
        let routed = part.route_of(NodeId(100));
        assert!(routed < part.fragment_count());
        assert_eq!(part.route_of(NodeId(100)), routed);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = ring(20);
        for _ in 0..10 {
            g.add_node_named("isolated", AttrMap::new());
        }
        let part = EdgeCutPartitioner::new(3).partition(&g);
        let total: usize = part.fragments.iter().map(Fragment::node_count).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn vertex_cut_assigns_every_edge_once() {
        let g = ring(50);
        let part = VertexCutPartitioner::new(4).partition(&g);
        let assigned: usize = part.fragments.iter().map(Fragment::edge_count).sum();
        assert_eq!(assigned, g.edge_count());
    }

    #[test]
    fn vertex_cut_replicates_boundary_nodes() {
        let g = ring(50);
        let part = VertexCutPartitioner::new(4).partition(&g);
        let replicated: usize = part.fragments.iter().map(|f| f.border_nodes.len()).sum();
        // A vertex-cut of a ring must replicate some nodes across fragments.
        assert!(replicated > 0);
    }

    #[test]
    fn strategy_dispatch() {
        let g = ring(30);
        let a = partition(&g, 3, PartitionStrategy::EdgeCut);
        let b = partition(&g, 3, PartitionStrategy::VertexCut);
        assert_eq!(a.strategy, PartitionStrategy::EdgeCut);
        assert_eq!(b.strategy, PartitionStrategy::VertexCut);
    }

    #[test]
    fn csr_snapshot_partitions_like_the_adjacency_list() {
        let g = ring(60);
        let snap = g.freeze();
        let a = EdgeCutPartitioner::new(4).partition(&g);
        let b = EdgeCutPartitioner::new(4).partition(&snap);
        assert_eq!(a.owner, b.owner);
        assert_eq!(a.crossing_edges.len(), b.crossing_edges.len());
        let v = VertexCutPartitioner::new(4).partition(&snap);
        let assigned: usize = v.fragments.iter().map(Fragment::edge_count).sum();
        assert_eq!(assigned, g.edge_count());
    }

    #[test]
    fn partition_json_roundtrip() {
        let g = ring(12);
        let part = EdgeCutPartitioner::new(3).partition(&g);
        let json = ngd_json::to_string(&part);
        let back: Partition = ngd_json::from_str(&json).unwrap();
        assert_eq!(back.owner, part.owner);
        assert_eq!(back.strategy, part.strategy);
        assert_eq!(back.crossing_edges, part.crossing_edges);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = Graph::new();
        let part = EdgeCutPartitioner::new(4).partition(&g);
        assert_eq!(part.balance(), 1.0);
        assert_eq!(part.cut_ratio(&g), 0.0);
    }
}
