//! The [`GraphView`] abstraction over graph representations.
//!
//! The detection stack reads graphs through this trait so that the same
//! matcher and detectors run over
//!
//! * the mutable adjacency-list [`Graph`] (the build/update representation),
//! * the frozen, label-partitioned [`crate::CsrSnapshot`] (the hot-path
//!   representation: contiguous label-sorted neighbour runs, binary-search
//!   candidate selection, a `(node label, edge label, node label)` triple
//!   index for seeding), and
//! * the [`crate::DeltaOverlay`] (a snapshot plus an unapplied
//!   [`crate::BatchUpdate`], the representation the incremental detectors
//!   search without materialising `G ⊕ ΔG`).
//!
//! The trait is deliberately read-only — mutation stays on [`Graph`] — and
//! is consumed generically (monomorphised), so the adjacency-list and CSR
//! paths compile to separate specialised code.  Closure-taking methods use
//! `&mut dyn FnMut` so the trait stays object-safe for the few callers that
//! want dynamic dispatch.

use crate::attrs::AttrMap;
use crate::graph::{EdgeRef, Graph, NodeId};
use crate::interner::{Sym, WILDCARD};
use crate::value::Value;

/// Read-only access to a directed labelled property graph.
pub trait GraphView {
    /// Number of nodes `|V|`.
    fn node_count(&self) -> usize;

    /// Number of edges `|E|`.
    fn edge_count(&self) -> usize;

    /// Is `id` a valid node of this view?
    fn contains_node(&self, id: NodeId) -> bool;

    /// The label of a node.
    fn label(&self, id: NodeId) -> Sym;

    /// A single attribute of a node.
    fn attr(&self, id: NodeId, name: Sym) -> Option<&Value>;

    /// The full attribute tuple of a node.
    fn attrs_of(&self, id: NodeId) -> &AttrMap;

    /// Does the exact edge `(src, dst, label)` exist?
    fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool;

    /// Out-degree of a node.
    fn out_degree(&self, id: NodeId) -> usize;

    /// In-degree of a node.
    fn in_degree(&self, id: NodeId) -> usize;

    /// Total (undirected) degree of a node.
    fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// Number of nodes carrying `label`.
    fn label_count(&self, label: Sym) -> usize;

    /// The nodes carrying `label`, materialised.
    fn nodes_with_label_vec(&self, label: Sym) -> Vec<NodeId>;

    /// All node ids (dense `0..node_count` in every representation).
    fn node_ids_vec(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32).map(NodeId).collect()
    }

    /// Number of out-neighbours of `id` along edges labelled `label`.
    fn out_labeled_count(&self, id: NodeId, label: Sym) -> usize;

    /// Number of in-neighbours of `id` along edges labelled `label`.
    fn in_labeled_count(&self, id: NodeId, label: Sym) -> usize;

    /// Contiguous slice of out-neighbours along `label`, when the
    /// representation stores neighbour runs contiguously (CSR fast path);
    /// `None` means the caller must fall back to
    /// [`GraphView::for_each_out_labeled`].
    fn out_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        let _ = (id, label);
        None
    }

    /// Contiguous slice of in-neighbours along `label`, when available.
    fn in_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        let _ = (id, label);
        None
    }

    /// Visit every out-neighbour of `id` along edges labelled `label`.
    fn for_each_out_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId));

    /// Visit every in-neighbour of `id` along edges labelled `label`.
    fn for_each_in_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId));

    /// Visit every undirected neighbour (successors then predecessors) with
    /// the connecting edge in its directed form.  A self-loop is visited
    /// twice (once per direction), matching `Graph::undirected_neighbors`.
    fn for_each_undirected(&self, id: NodeId, f: &mut dyn FnMut(NodeId, EdgeRef));

    /// Visit every outgoing edge of `id` exactly once, as
    /// `(neighbour, edge label)` pairs.
    fn for_each_out(&self, id: NodeId, f: &mut dyn FnMut(NodeId, Sym));

    /// Visit every directed edge of the graph.
    fn for_each_edge(&self, f: &mut dyn FnMut(EdgeRef));

    /// The distinct sources (`want_src = true`) or destinations of edges
    /// matching the `(source label, edge label, destination label)` triple.
    /// `None` means the representation keeps no triple index and the caller
    /// must use the label index instead.  Implementations must return the
    /// *exact* endpoint set — the matcher relies on it for seeding.
    fn triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        let _ = (src_label, edge_label, dst_label, want_src);
        None
    }

    /// Number of edges matching the label triple (an O(1) upper bound used
    /// to pick the smallest seed set before materialising it), or `None`
    /// when no triple index is kept.
    fn triple_run_len(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> Option<usize> {
        let _ = (src_label, edge_label, dst_label);
        None
    }

    /// As [`GraphView::triple_endpoints`], but any of the three labels may
    /// be [`WILDCARD`], in which case every triple group matching the
    /// concrete components contributes.  Representations with a triple
    /// index override this by unioning the matching groups; the default
    /// only answers the fully-concrete case.
    fn labeled_triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        if src_label != WILDCARD && edge_label != WILDCARD && dst_label != WILDCARD {
            self.triple_endpoints(src_label, edge_label, dst_label, want_src)
        } else {
            None
        }
    }

    /// As [`GraphView::triple_run_len`], but wildcard-tolerant like
    /// [`GraphView::labeled_triple_endpoints`] (the two must agree on which
    /// triples they can answer).
    fn labeled_triple_run_len(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
    ) -> Option<usize> {
        if src_label != WILDCARD && edge_label != WILDCARD && dst_label != WILDCARD {
            self.triple_run_len(src_label, edge_label, dst_label)
        } else {
            None
        }
    }

    /// The O(1) statistics handle the match planner's cost model reads.
    fn selectivity(&self) -> SelectivityStats<'_>
    where
        Self: Sized,
    {
        SelectivityStats::new(self)
    }

    /// Collect the out-neighbours of `id` along `label` (uses the slice
    /// fast path when available).
    fn out_labeled_vec(&self, id: NodeId, label: Sym) -> Vec<NodeId> {
        if let Some(slice) = self.out_labeled_slice(id, label) {
            return slice.to_vec();
        }
        let mut out = Vec::new();
        self.for_each_out_labeled(id, label, &mut |n| out.push(n));
        out
    }

    /// Collect the in-neighbours of `id` along `label` (uses the slice
    /// fast path when available).
    fn in_labeled_vec(&self, id: NodeId, label: Sym) -> Vec<NodeId> {
        if let Some(slice) = self.in_labeled_slice(id, label) {
            return slice.to_vec();
        }
        let mut out = Vec::new();
        self.for_each_in_labeled(id, label, &mut |n| out.push(n));
        out
    }
}

/// Cheap selectivity statistics over a [`GraphView`], the inputs of the
/// match planner's cost model.
///
/// Every query is answered from indexes the representation already keeps
/// (label partition sizes, triple-index run lengths) — `O(1)` per lookup on
/// a CSR or mmap snapshot, `O(labels)` at worst for wildcard triples — so
/// plan compilation never scans adjacency.  On representations without a
/// triple index the triple queries return `None` and the planner falls back
/// to label cardinalities.
#[derive(Clone, Copy)]
pub struct SelectivityStats<'g> {
    view: &'g dyn GraphView,
}

impl<'g> SelectivityStats<'g> {
    /// Statistics over any view (use [`GraphView::selectivity`] where the
    /// concrete type is known).
    pub fn new(view: &'g dyn GraphView) -> Self {
        SelectivityStats { view }
    }

    /// `|V|`.
    pub fn node_count(&self) -> usize {
        self.view.node_count()
    }

    /// Number of nodes a label constraint admits (`|V|` for the wildcard).
    pub fn label_size(&self, label: Sym) -> usize {
        if label == WILDCARD {
            self.view.node_count()
        } else {
            self.view.label_count(label)
        }
    }

    /// Number of edges matching a (possibly wildcarded) label triple, when
    /// the representation keeps a triple index.
    pub fn triple_size(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> Option<usize> {
        self.view
            .labeled_triple_run_len(src_label, edge_label, dst_label)
    }

    /// Estimated fan-out of extending a match across a pattern edge: the
    /// average number of `edge_label` edges into `dst_label` nodes per
    /// `src_label` node (`from_src = true`), or the symmetric in-direction
    /// average.  `None` without a triple index.
    pub fn avg_fanout(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        from_src: bool,
    ) -> Option<f64> {
        let edges = self.triple_size(src_label, edge_label, dst_label)? as f64;
        let anchors = self.label_size(if from_src { src_label } else { dst_label });
        Some(edges / (anchors.max(1) as f64))
    }
}

impl std::fmt::Debug for SelectivityStats<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectivityStats")
            .field("nodes", &self.view.node_count())
            .field("edges", &self.view.edge_count())
            .finish()
    }
}

impl GraphView for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn contains_node(&self, id: NodeId) -> bool {
        Graph::contains_node(self, id)
    }

    fn label(&self, id: NodeId) -> Sym {
        Graph::label(self, id)
    }

    fn attr(&self, id: NodeId, name: Sym) -> Option<&Value> {
        Graph::attr(self, id, name)
    }

    fn attrs_of(&self, id: NodeId) -> &AttrMap {
        Graph::attrs(self, id)
    }

    fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        Graph::has_edge(self, src, dst, label)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        Graph::out_degree(self, id)
    }

    fn in_degree(&self, id: NodeId) -> usize {
        Graph::in_degree(self, id)
    }

    fn label_count(&self, label: Sym) -> usize {
        self.nodes_with_label(label).len()
    }

    fn nodes_with_label_vec(&self, label: Sym) -> Vec<NodeId> {
        self.nodes_with_label(label).to_vec()
    }

    fn out_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        self.out_neighbors(id)
            .iter()
            .filter(|&&(_, l)| l == label)
            .count()
    }

    fn in_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        self.in_neighbors(id)
            .iter()
            .filter(|&&(_, l)| l == label)
            .count()
    }

    fn for_each_out_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        for &(n, l) in self.out_neighbors(id) {
            if l == label {
                f(n);
            }
        }
    }

    fn for_each_in_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        for &(n, l) in self.in_neighbors(id) {
            if l == label {
                f(n);
            }
        }
    }

    fn for_each_undirected(&self, id: NodeId, f: &mut dyn FnMut(NodeId, EdgeRef)) {
        for (n, e) in self.undirected_neighbors(id) {
            f(n, e);
        }
    }

    fn for_each_out(&self, id: NodeId, f: &mut dyn FnMut(NodeId, Sym)) {
        for &(n, l) in self.out_neighbors(id) {
            f(n, l);
        }
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(EdgeRef)) {
        for e in self.edges() {
            f(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;
    use crate::interner::intern;

    fn small() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node_named("a", AttrMap::new());
        let b = g.add_node_named("b", AttrMap::new());
        let c = g.add_node_named("b", AttrMap::new());
        g.add_edge_named(a, b, "e").unwrap();
        g.add_edge_named(a, c, "e").unwrap();
        g.add_edge_named(b, a, "f").unwrap();
        (g, a, b, c)
    }

    #[test]
    fn graph_implements_the_view_faithfully() {
        let (g, a, b, c) = small();
        let view: &dyn GraphView = &g;
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_count(), 3);
        assert_eq!(view.label_count(intern("b")), 2);
        assert_eq!(view.out_labeled_count(a, intern("e")), 2);
        assert_eq!(view.in_labeled_count(a, intern("f")), 1);
        let mut outs = Vec::new();
        view.for_each_out_labeled(a, intern("e"), &mut |n| outs.push(n));
        assert_eq!(outs, vec![b, c]);
        let mut edges = 0;
        view.for_each_edge(&mut |_| edges += 1);
        assert_eq!(edges, 3);
        assert!(view
            .triple_endpoints(intern("a"), intern("e"), intern("b"), true)
            .is_none());
    }
}
