//! # ngd-graph
//!
//! Directed property-graph substrate used by the NGD (numeric graph
//! dependency) inconsistency-detection stack.
//!
//! The data model follows Section 2 of *"Catching Numeric Inconsistencies in
//! Graphs"* (SIGMOD 2018): a graph `G = (V, E, L, F_A)` where
//!
//! * `V` is a finite set of nodes,
//! * `E ⊆ V × V` is a set of labelled directed edges,
//! * every node and edge carries a label `L(·)` drawn from an alphabet `Γ`,
//! * every node `v` carries an attribute tuple `F_A(v) = (A_1 = a_1, …)`
//!   with constant values (integers, strings, booleans).
//!
//! The crate keeps **two graph representations** behind one read interface:
//!
//! * [`Graph`] — the mutable adjacency-list representation used while
//!   *building* and *updating* a graph (`add_node` / `add_edge` /
//!   [`BatchUpdate`]);
//! * [`CsrSnapshot`] — an immutable, label-partitioned compressed-sparse-row
//!   snapshot produced by [`Graph::freeze`], whose label-sorted contiguous
//!   neighbour runs and `(node label, edge label, node label)` triple index
//!   make matcher candidate selection a binary search over a slice instead
//!   of a scan over heap-allocated lists.
//!
//! Both (plus [`DeltaOverlay`], a snapshot composed with an *unapplied*
//! `ΔG`) implement the read-only [`GraphView`] trait that the matcher and
//! detectors consume generically.  Freeze once per loaded graph; keep
//! updating through `Graph`/`BatchUpdate`; hand snapshots (or overlays) to
//! the hot paths.
//!
//! On top of the representations this crate provides:
//!
//! * [`view`] — the [`GraphView`] read abstraction;
//! * [`csr`] — the frozen snapshot and [`Graph::freeze`];
//! * [`overlay`] — [`DeltaOverlay`], `snapshot ⊕ ΔG` without
//!   materialisation (what keeps incremental detection `O(|ΔG|)`-local);
//! * [`neighborhood`] — `d`-hop neighbourhoods (`G_d(v)`), the locality
//!   primitive behind the paper's *localizable* incremental algorithm;
//! * [`update`] — batch edge insertions/deletions (`ΔG`) and their
//!   application `G ⊕ ΔG`;
//! * [`partition`] — edge-cut and vertex-cut fragmentation of any
//!   [`GraphView`] over `p` workers (the METIS substitute used by the
//!   parallel detectors);
//! * [`shard`] — [`ShardedSnapshot`]: per-fragment frozen CSRs built from a
//!   [`Partition`] ([`Graph::freeze_sharded`] / `CsrSnapshot::shard`), each
//!   fragment owning its nodes' complete label-sorted runs plus a
//!   replicated `d`-hop halo around its border nodes; workers read through
//!   a [`FragmentView`] whose rare non-local adjacency reads fall back to
//!   the global snapshot and are counted as cross-fragment candidate
//!   fetches (the modelled communication cost of the parallel detectors);
//! * [`persist`] — zero-copy on-disk snapshots: a versioned, checksummed
//!   binary writer ([`SnapshotWriter`]) and memory-mapped loaders
//!   ([`MmapSnapshot`], [`MmapShardedSnapshot`]) that serve the frozen
//!   arrays straight from the file through [`GraphView`], so a graph is
//!   frozen once on disk and read by many detector processes;
//! * [`io`] — a plain-text edge-list/attribute format plus JSON
//!   (de)serialization for graphs;
//! * [`stats`] — density, degree and component statistics used to check
//!   that simulated datasets match the paper's reported characteristics.
//!
//! Strings (labels and attribute names) are interned process-wide through
//! [`interner`], so symbols created by data generators, rule parsers and
//! detectors are always comparable.

pub mod attrs;
pub mod builder;
pub mod csr;
pub mod graph;
pub mod interner;
pub mod io;
pub mod neighborhood;
pub mod overlay;
pub mod partition;
pub mod persist;
pub mod shard;
pub mod stats;
pub mod update;
pub mod value;
pub mod view;

pub use attrs::AttrMap;
pub use builder::GraphBuilder;
pub use csr::CsrSnapshot;
pub use graph::{EdgeRef, Graph, NodeData, NodeId};
pub use interner::{intern, resolve, Sym, WILDCARD};
pub use neighborhood::{d_neighbors, d_neighbors_many, induced_subgraph, Neighborhood};
pub use overlay::{DeltaOverlay, RebaseError};
pub use partition::{
    EdgeCutPartitioner, Fragment, Partition, PartitionStrategy, VertexCutPartitioner,
};
pub use persist::{
    CompactError, CompactReport, CompactionWriter, MmapFragmentView, MmapShardedSnapshot,
    MmapSnapshot, PersistError, ShardedCompactStats, SnapshotWriter,
};
pub use shard::{FragmentSnapshot, FragmentView, RemoteAccounting, ShardedRead, ShardedSnapshot};
pub use stats::GraphStats;
pub use update::{BatchUpdate, EdgeOp, NewNode, UpdateError};
pub use value::Value;
pub use view::{GraphView, SelectivityStats};

/// A convenience `Result` alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised by graph mutation and lookup operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced an out-of-bounds slot.
    NodeNotFound(NodeId),
    /// The referenced edge does not exist.
    EdgeNotFound {
        /// Source node of the missing edge.
        src: NodeId,
        /// Destination node of the missing edge.
        dst: NodeId,
    },
    /// An edge with the same endpoints and label already exists.
    DuplicateEdge {
        /// Source node of the duplicate edge.
        src: NodeId,
        /// Destination node of the duplicate edge.
        dst: NodeId,
    },
    /// An attribute was re-declared with a conflicting value.
    DuplicateAttribute(String),
    /// A parse error while reading a serialized graph.
    Parse(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeNotFound(id) => write!(f, "node {:?} not found", id),
            GraphError::EdgeNotFound { src, dst } => {
                write!(f, "edge {:?} -> {:?} not found", src, dst)
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "edge {:?} -> {:?} already exists", src, dst)
            }
            GraphError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` declared twice")
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
