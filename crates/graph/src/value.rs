//! Attribute values.
//!
//! Node attributes carry constant values drawn from the universe `U` of the
//! paper: integers (the numeric values NGD arithmetic operates on), strings
//! (used by equality literals such as `z.val ≠ "living people"`), booleans
//! (e.g. account `status` flags) and dates, which are normalised to an
//! integer day count so that date arithmetic (`wasDestroyedOnDate −
//! wasCreatedOnDate ≥ c`) is plain integer arithmetic.

use ngd_json::{FromJson, Json, JsonError, ToJson};
use std::cmp::Ordering;
use std::fmt;

/// A constant attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit signed integer (also the representation of dates, in days).
    Int(i64),
    /// An owned string constant.
    Str(String),
    /// A boolean flag. Participates in arithmetic as 0/1.
    Bool(bool),
}

impl Value {
    /// Interpret the value as an integer, if it has a numeric reading.
    ///
    /// Booleans read as `0`/`1`; strings that parse as integers (a common
    /// situation in scraped knowledge bases) read as their parsed value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Str(s) => s.trim().parse::<i64>().ok(),
        }
    }

    /// Is this value numeric (i.e. usable inside arithmetic expressions)?
    pub fn is_numeric(&self) -> bool {
        self.as_int().is_some()
    }

    /// Interpret the value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Total comparison used by built-in predicates when the two sides are
    /// not both numeric: values of the same variant compare naturally,
    /// values of different variants are incomparable (returns `None`).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            // Mixed numeric readings (e.g. Int vs Bool) still compare.
            _ => match (self.as_int(), other.as_int()) {
                (Some(a), Some(b)) => Some(a.cmp(&b)),
                _ => None,
            },
        }
    }

    /// Convert a calendar date into the day-count integer representation.
    ///
    /// Uses a proleptic-Gregorian day number; only ordering and differences
    /// matter for NGD evaluation, so any consistent epoch works.
    pub fn from_date(year: i64, month: i64, day: i64) -> Value {
        Value::Int(days_from_civil(year, month, day))
    }
}

/// Days since 1970-01-01 (civil), per Howard Hinnant's `days_from_civil`.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        // Externally-tagged encoding: {"Int": 5} / {"Str": "x"} / {"Bool": true}.
        let (tag, inner) = match self {
            Value::Int(i) => ("Int", Json::Int(*i)),
            Value::Str(s) => ("Str", Json::Str(s.clone())),
            Value::Bool(b) => ("Bool", Json::Bool(*b)),
        };
        Json::Obj(vec![(tag.to_string(), inner)])
    }
}

impl FromJson for Value {
    fn from_json(value: &Json) -> ngd_json::Result<Self> {
        let fields = value.as_obj()?;
        match fields {
            [(tag, inner)] => match tag.as_str() {
                "Int" => Ok(Value::Int(inner.as_i64()?)),
                "Str" => Ok(Value::Str(inner.as_str()?.to_owned())),
                "Bool" => Ok(Value::Bool(inner.as_bool()?)),
                other => Err(JsonError::new(format!("unknown Value variant `{other}`"))),
            },
            _ => Err(JsonError::new("Value must be a single-field object")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reading_of_each_variant() {
        assert_eq!(Value::Int(42).as_int(), Some(42));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Bool(false).as_int(), Some(0));
        assert_eq!(Value::Str("  17 ".into()).as_int(), Some(17));
        assert_eq!(Value::Str("seventeen".into()).as_int(), None);
    }

    #[test]
    fn numeric_check() {
        assert!(Value::Int(0).is_numeric());
        assert!(Value::Bool(false).is_numeric());
        assert!(Value::Str("12".into()).is_numeric());
        assert!(!Value::Str("BBC Trust".into()).is_numeric());
    }

    #[test]
    fn comparisons_within_variant() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(true).partial_cmp_value(&Value::Bool(false)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn comparisons_across_variants() {
        // numeric readings still compare
        assert_eq!(
            Value::Bool(true).partial_cmp_value(&Value::Int(1)),
            Some(Ordering::Equal)
        );
        // string vs int is incomparable
        assert_eq!(
            Value::Str("abc".into()).partial_cmp_value(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn date_encoding_orders_correctly() {
        let created = Value::from_date(2007, 1, 1);
        let destroyed = Value::from_date(1946, 8, 28);
        // BBC Trust example from the paper: destroyed before created.
        assert!(destroyed.as_int().unwrap() < created.as_int().unwrap());
        // epoch sanity
        assert_eq!(Value::from_date(1970, 1, 1), Value::Int(0));
        assert_eq!(Value::from_date(1970, 1, 2), Value::Int(1));
    }

    #[test]
    fn date_difference_in_days() {
        let a = Value::from_date(2000, 3, 1).as_int().unwrap();
        let b = Value::from_date(2000, 2, 28).as_int().unwrap();
        assert_eq!(a - b, 2); // 2000 is a leap year
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn json_roundtrip() {
        for v in [Value::Int(-9), Value::Str("hey".into()), Value::Bool(true)] {
            let json = ngd_json::to_string(&v);
            let back: Value = ngd_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }
}
