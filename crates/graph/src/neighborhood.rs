//! `d`-hop neighbourhoods and induced subgraphs.
//!
//! Section 6.1 of the paper defines, for a node `v`, the set `V_d(v)` of all
//! nodes within `d` hops of `v` (treating `G` as undirected), and the
//! `d`-neighbour `G_d(v)` as the subgraph induced by `V_d(v)`.  These are
//! the objects a *localizable* incremental algorithm is allowed to touch:
//! the cost of `IncDect` must be a function of `|G_{dΣ}(ΔG)|` only.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;
use std::collections::{HashMap, HashSet, VecDeque};

/// The result of a bounded BFS from one or more sources: every reached node
/// together with its hop distance from the nearest source.
#[derive(Debug, Clone, Default)]
pub struct Neighborhood {
    /// Hop distance of each reached node from the nearest source.
    pub distance: HashMap<NodeId, usize>,
}

impl Neighborhood {
    /// Nodes contained in the neighbourhood.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.distance.keys().copied()
    }

    /// Number of nodes in the neighbourhood.
    pub fn len(&self) -> usize {
        self.distance.len()
    }

    /// Whether the neighbourhood is empty.
    pub fn is_empty(&self) -> bool {
        self.distance.is_empty()
    }

    /// Does the neighbourhood contain `node`?
    pub fn contains(&self, node: NodeId) -> bool {
        self.distance.contains_key(&node)
    }

    /// The set of contained node ids.
    pub fn node_set(&self) -> HashSet<NodeId> {
        self.distance.keys().copied().collect()
    }
}

/// Compute `V_d(v)`: every node within `d` undirected hops of `v`
/// (including `v` itself at distance 0).
pub fn d_neighbors<G: GraphView + ?Sized>(graph: &G, v: NodeId, d: usize) -> Neighborhood {
    d_neighbors_many(graph, std::iter::once(v), d)
}

/// Compute the union of `V_d(v)` over several sources — the
/// `G_{dΣ}(ΔG)` construction used by the incremental detectors, where the
/// sources are the endpoints of updated edges.
pub fn d_neighbors_many<G, I>(graph: &G, sources: I, d: usize) -> Neighborhood
where
    G: GraphView + ?Sized,
    I: IntoIterator<Item = NodeId>,
{
    let mut distance: HashMap<NodeId, usize> = HashMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for src in sources {
        if !graph.contains_node(src) {
            continue;
        }
        if let std::collections::hash_map::Entry::Vacant(e) = distance.entry(src) {
            e.insert(0);
            queue.push_back(src);
        }
    }
    while let Some(node) = queue.pop_front() {
        let dist = distance[&node];
        if dist == d {
            continue;
        }
        graph.for_each_undirected(node, &mut |next, _edge| {
            if let std::collections::hash_map::Entry::Vacant(e) = distance.entry(next) {
                e.insert(dist + 1);
                queue.push_back(next);
            }
        });
    }
    Neighborhood { distance }
}

/// Build the subgraph of `graph` induced by `nodes` (Section 2 of the
/// paper): it keeps every edge of `graph` whose both endpoints are in
/// `nodes`.  Returns the induced graph together with the mapping from old
/// node ids to new node ids.
pub fn induced_subgraph<G: GraphView + ?Sized>(
    graph: &G,
    nodes: &HashSet<NodeId>,
) -> (Graph, HashMap<NodeId, NodeId>) {
    let mut sub = Graph::with_capacity(nodes.len());
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
    // Deterministic iteration order: sort the node ids.
    let mut sorted: Vec<NodeId> = nodes.iter().copied().collect();
    sorted.sort();
    for &old in &sorted {
        if !graph.contains_node(old) {
            continue;
        }
        let new = sub.add_node(graph.label(old), graph.attrs_of(old).clone());
        mapping.insert(old, new);
    }
    for &old in &sorted {
        if !graph.contains_node(old) {
            continue;
        }
        // Outgoing edges only, so each edge — including self-loops, which an
        // undirected walk would visit twice — is added exactly once.
        graph.for_each_out(old, &mut |dst, label| {
            if let (Some(&ns), Some(&nd)) = (mapping.get(&old), mapping.get(&dst)) {
                // Duplicate-free by construction since the source graph is.
                sub.add_edge(ns, nd, label).expect("induced edge unique");
            }
        });
    }
    (sub, mapping)
}

/// Shortest undirected distance between two nodes, if connected.
pub fn undirected_distance<G: GraphView + ?Sized>(
    graph: &G,
    from: NodeId,
    to: NodeId,
) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    visited.insert(from);
    queue.push_back((from, 0));
    while let Some((node, dist)) = queue.pop_front() {
        let mut found = false;
        graph.for_each_undirected(node, &mut |next, _| {
            if next == to {
                found = true;
            } else if visited.insert(next) {
                queue.push_back((next, dist + 1));
            }
        });
        if found {
            return Some(dist + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;

    /// Build a directed path a0 -> a1 -> ... -> a(n-1).
    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| g.add_node_named("node", AttrMap::new()))
            .collect();
        for w in nodes.windows(2) {
            g.add_edge_named(w[0], w[1], "next").unwrap();
        }
        (g, nodes)
    }

    #[test]
    fn zero_hop_neighborhood_is_just_the_source() {
        let (g, nodes) = path_graph(5);
        let nb = d_neighbors(&g, nodes[2], 0);
        assert_eq!(nb.len(), 1);
        assert!(nb.contains(nodes[2]));
    }

    #[test]
    fn bfs_is_undirected() {
        let (g, nodes) = path_graph(5);
        // From the middle of a directed path, one hop reaches both the
        // successor and the predecessor.
        let nb = d_neighbors(&g, nodes[2], 1);
        assert_eq!(nb.len(), 3);
        assert!(nb.contains(nodes[1]));
        assert!(nb.contains(nodes[3]));
        assert_eq!(nb.distance[&nodes[1]], 1);
    }

    #[test]
    fn d_hops_bound_respected() {
        let (g, nodes) = path_graph(10);
        let nb = d_neighbors(&g, nodes[0], 3);
        assert_eq!(nb.len(), 4); // nodes 0..=3
        assert!(!nb.contains(nodes[4]));
    }

    #[test]
    fn multi_source_union() {
        let (g, nodes) = path_graph(10);
        let nb = d_neighbors_many(&g, [nodes[0], nodes[9]], 1);
        assert_eq!(nb.len(), 4); // {0,1} ∪ {8,9}
        assert!(nb.contains(nodes[8]));
    }

    #[test]
    fn missing_sources_are_ignored() {
        let (g, nodes) = path_graph(3);
        let nb = d_neighbors_many(&g, [nodes[0], NodeId(999)], 1);
        assert_eq!(nb.len(), 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, nodes) = path_graph(5);
        let keep: HashSet<NodeId> = [nodes[1], nodes[2], nodes[4]].into_iter().collect();
        let (sub, mapping) = induced_subgraph(&g, &keep);
        assert_eq!(sub.node_count(), 3);
        // Only edge 1->2 survives; 2->3, 3->4 cross the boundary.
        assert_eq!(sub.edge_count(), 1);
        let (n1, n2) = (mapping[&nodes[1]], mapping[&nodes[2]]);
        assert!(sub.has_edge(n1, n2, crate::interner::intern("next")));
    }

    #[test]
    fn induced_subgraph_preserves_attributes() {
        let mut g = Graph::new();
        let v = g.add_node_named(
            "village",
            AttrMap::from_pairs([("pop", crate::value::Value::Int(7))]),
        );
        let keep: HashSet<NodeId> = [v].into_iter().collect();
        let (sub, mapping) = induced_subgraph(&g, &keep);
        assert_eq!(
            sub.attr(mapping[&v], crate::interner::intern("pop")),
            Some(&crate::value::Value::Int(7))
        );
    }

    #[test]
    fn induced_subgraph_handles_self_loops() {
        let mut g = Graph::new();
        let a = g.add_node_named("a", AttrMap::new());
        let b = g.add_node_named("b", AttrMap::new());
        g.add_edge_named(a, a, "self").unwrap();
        g.add_edge_named(a, b, "e").unwrap();
        let keep: HashSet<NodeId> = [a, b].into_iter().collect();
        let (sub, mapping) = induced_subgraph(&g, &keep);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(mapping[&a], mapping[&a], crate::interner::intern("self")));
        // Same via the CSR view.
        let snap = g.freeze();
        let (sub2, _) = induced_subgraph(&snap, &keep);
        assert_eq!(sub2.edge_count(), 2);
    }

    #[test]
    fn undirected_distance_on_path() {
        let (g, nodes) = path_graph(6);
        assert_eq!(undirected_distance(&g, nodes[0], nodes[0]), Some(0));
        assert_eq!(undirected_distance(&g, nodes[0], nodes[5]), Some(5));
        assert_eq!(undirected_distance(&g, nodes[5], nodes[0]), Some(5));
        // Disconnected node.
        let mut g2 = g.clone();
        let lonely = g2.add_node_named("x", AttrMap::new());
        assert_eq!(undirected_distance(&g2, nodes[0], lonely), None);
    }
}
