//! Plain-text and JSON graph (de)serialization.
//!
//! Two formats are supported:
//!
//! * **JSON** — the full [`Graph`] structure via `ngd-json` (`to_json` /
//!   `from_json`), used for round-tripping exact graphs in tests and for
//!   persisting experiment inputs;
//! * **text edge-list** — a simple line-oriented format close to what
//!   public graph dumps (SNAP, DBpedia extracts) look like:
//!
//!   ```text
//!   # comment
//!   N <id> <label> [attr=value]...
//!   E <src> <dst> <label>
//!   ```
//!
//!   Attribute values parse as integers when possible, as `true`/`false`
//!   for booleans, and as strings otherwise.

use crate::attrs::AttrMap;
use crate::graph::{Graph, NodeId};
use crate::interner::intern;
use crate::value::Value;
use crate::{GraphError, Result};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialize the graph to JSON.
pub fn to_json(graph: &Graph) -> String {
    ngd_json::to_string(graph)
}

/// Deserialize a graph from JSON.
pub fn from_json(json: &str) -> Result<Graph> {
    ngd_json::from_str(json).map_err(|e| GraphError::Parse(e.to_string()))
}

/// Render the graph in the text edge-list format.
pub fn to_text(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ngd-graph text format: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for id in graph.node_ids() {
        let data = graph.node(id);
        let _ = write!(out, "N {} {}", id.0, data.label);
        for (name, value) in data.attrs.iter() {
            match value {
                Value::Int(i) => {
                    let _ = write!(out, " {}={}", name, i);
                }
                Value::Bool(b) => {
                    let _ = write!(out, " {}={}", name, b);
                }
                Value::Str(s) => {
                    let _ = write!(out, " {}={:?}", name, s);
                }
            }
        }
        let _ = writeln!(out);
    }
    for edge in graph.edges() {
        let _ = writeln!(out, "E {} {} {}", edge.src.0, edge.dst.0, edge.label);
    }
    out
}

fn parse_value(raw: &str) -> Value {
    if raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2 {
        return Value::Str(raw[1..raw.len() - 1].to_owned());
    }
    if raw == "true" {
        return Value::Bool(true);
    }
    if raw == "false" {
        return Value::Bool(false);
    }
    match raw.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(raw.to_owned()),
    }
}

/// Parse a graph from the text edge-list format.
///
/// Node ids in the file may be arbitrary non-negative integers; they are
/// remapped to dense ids in declaration order.
pub fn from_text(text: &str) -> Result<Graph> {
    let mut graph = Graph::new();
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        match tag {
            "N" => {
                let id: u64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    GraphError::Parse(format!("line {}: bad node id", lineno + 1))
                })?;
                let label = parts.next().ok_or_else(|| {
                    GraphError::Parse(format!("line {}: missing label", lineno + 1))
                })?;
                let mut attrs = AttrMap::new();
                // Re-join tokens that belong to a quoted string value (string
                // attributes such as `category="living people"` contain
                // whitespace), then split each assembled pair on `=`.
                let mut pending: Option<String> = None;
                let mut pairs: Vec<String> = Vec::new();
                for token in parts {
                    match pending.take() {
                        Some(mut open) => {
                            open.push(' ');
                            open.push_str(token);
                            if open.ends_with('"') {
                                pairs.push(open);
                            } else {
                                pending = Some(open);
                            }
                        }
                        None => {
                            let opens_quote = token
                                .split_once('=')
                                .map(|(_, v)| {
                                    v.starts_with('"') && !(v.len() >= 2 && v.ends_with('"'))
                                })
                                .unwrap_or(false);
                            if opens_quote {
                                pending = Some(token.to_owned());
                            } else {
                                pairs.push(token.to_owned());
                            }
                        }
                    }
                }
                if let Some(unterminated) = pending {
                    return Err(GraphError::Parse(format!(
                        "line {}: unterminated string in `{unterminated}`",
                        lineno + 1
                    )));
                }
                for attr in &pairs {
                    let (name, value) = attr.split_once('=').ok_or_else(|| {
                        GraphError::Parse(format!("line {}: bad attribute `{attr}`", lineno + 1))
                    })?;
                    attrs.set(intern(name), parse_value(value));
                }
                let node = graph.add_node(intern(label), attrs);
                id_map.insert(id, node);
            }
            "E" => {
                let src: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| GraphError::Parse(format!("line {}: bad src", lineno + 1)))?;
                let dst: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| GraphError::Parse(format!("line {}: bad dst", lineno + 1)))?;
                let label = parts.next().ok_or_else(|| {
                    GraphError::Parse(format!("line {}: missing edge label", lineno + 1))
                })?;
                let s = *id_map.get(&src).ok_or_else(|| {
                    GraphError::Parse(format!("line {}: unknown node {src}", lineno + 1))
                })?;
                let d = *id_map.get(&dst).ok_or_else(|| {
                    GraphError::Parse(format!("line {}: unknown node {dst}", lineno + 1))
                })?;
                graph.add_edge(s, d, intern(label))?;
            }
            other => {
                return Err(GraphError::Parse(format!(
                    "line {}: unknown record tag `{other}`",
                    lineno + 1
                )))
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node_named(
            "village",
            AttrMap::from_pairs([
                ("femalePopulation", Value::Int(600)),
                ("name", Value::Str("Bhonpur".into())),
            ]),
        );
        let b = g.add_node_named("country", AttrMap::new());
        g.add_edge_named(a, b, "locatedIn").unwrap();
        g
    }

    #[test]
    fn json_roundtrip() {
        let g = sample();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
    }

    #[test]
    fn text_roundtrip_preserves_structure_and_attrs() {
        let g = sample();
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(
            back.attr(NodeId(0), intern("femalePopulation")),
            Some(&Value::Int(600))
        );
        assert_eq!(
            back.attr(NodeId(0), intern("name")),
            Some(&Value::Str("Bhonpur".into()))
        );
    }

    #[test]
    fn text_parser_accepts_comments_blanks_and_sparse_ids() {
        let text =
            "# header\n\nN 10 account follower=75900 status=true\nN 20 company\nE 10 20 refersTo\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.attr(NodeId(0), intern("follower")),
            Some(&Value::Int(75900))
        );
        assert_eq!(
            g.attr(NodeId(0), intern("status")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert!(from_text("X 1 2").is_err());
        assert!(from_text("N notanid label").is_err());
        assert!(from_text("N 1 a\nE 1 99 e").is_err());
        assert!(from_text("N 1 a attrwithoutvalue").is_err());
        assert!(from_text("E 1 2").is_err());
    }

    #[test]
    fn value_parsing_rules() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("-3"), Value::Int(-3));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("\"quoted\""), Value::Str("quoted".into()));
        assert_eq!(parse_value("plain"), Value::Str("plain".into()));
    }
}
