//! Batch updates `ΔG`.
//!
//! Section 5.2 of the paper defines a *unit update* as an edge insertion or
//! deletion; insertions may introduce new nodes (with labels and attribute
//! values), deletions only remove links and leave nodes in place.  A *batch
//! update* `ΔG = (ΔG⁺, ΔG⁻)` is a set of unit updates, and `G ⊕ ΔG` is the
//! graph obtained by applying them.
//!
//! A [`BatchUpdate`] first materialises its [`NewNode`]s (whose ids are
//! assigned densely after the existing nodes of the target graph, so the
//! update can reference them before application), then applies edge
//! insertions and deletions.

use crate::attrs::AttrMap;
use crate::graph::{EdgeRef, Graph, NodeId};
use crate::interner::Sym;
use crate::view::GraphView;
use ngd_json::{FromJson, Json, JsonError, ToJson};
use std::collections::HashSet;

/// A node introduced by a batch update.
#[derive(Debug, Clone, PartialEq)]
pub struct NewNode {
    /// Label of the new node.
    pub label: Sym,
    /// Attribute tuple of the new node.
    pub attrs: AttrMap,
}

ngd_json::impl_json_struct!(NewNode { label, attrs });

/// A single edge operation within a batch update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// `insert (v, v')` with label — the edge must not exist in `G`.
    Insert(EdgeRef),
    /// `delete (v, v')` with label — the edge must exist in `G`.
    Delete(EdgeRef),
}

impl EdgeOp {
    /// The edge this operation touches.
    pub fn edge(&self) -> EdgeRef {
        match self {
            EdgeOp::Insert(e) | EdgeOp::Delete(e) => *e,
        }
    }

    /// Is this an insertion?
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeOp::Insert(_))
    }
}

impl ToJson for EdgeOp {
    fn to_json(&self) -> Json {
        let (tag, edge) = match self {
            EdgeOp::Insert(e) => ("Insert", e),
            EdgeOp::Delete(e) => ("Delete", e),
        };
        Json::Obj(vec![(tag.to_string(), edge.to_json())])
    }
}

impl FromJson for EdgeOp {
    fn from_json(value: &Json) -> ngd_json::Result<Self> {
        match value.as_obj()? {
            [(tag, inner)] => match tag.as_str() {
                "Insert" => Ok(EdgeOp::Insert(EdgeRef::from_json(inner)?)),
                "Delete" => Ok(EdgeOp::Delete(EdgeRef::from_json(inner)?)),
                other => Err(JsonError::new(format!("unknown EdgeOp variant `{other}`"))),
            },
            _ => Err(JsonError::new("EdgeOp must be a single-field object")),
        }
    }
}

/// Errors raised when applying a batch update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An inserted edge references a node that exists in neither `G` nor the
    /// update's new-node list.
    UnknownNode(NodeId),
    /// An inserted edge already exists in the (partially updated) graph.
    InsertExisting(EdgeRef),
    /// A deleted edge does not exist in the (partially updated) graph.
    DeleteMissing(EdgeRef),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UnknownNode(id) => write!(f, "update references unknown node {id}"),
            UpdateError::InsertExisting(e) => {
                write!(f, "insert of existing edge {:?} -> {:?}", e.src, e.dst)
            }
            UpdateError::DeleteMissing(e) => {
                write!(f, "delete of missing edge {:?} -> {:?}", e.src, e.dst)
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A batch update `ΔG`: new nodes plus a sequence of edge operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchUpdate {
    /// Nodes introduced by the update; the `i`-th new node receives id
    /// `base + i`, where `base` is the node count of the target graph.
    pub new_nodes: Vec<NewNode>,
    /// Edge insertions and deletions, in application order.
    pub ops: Vec<EdgeOp>,
}

impl BatchUpdate {
    /// An empty update.
    pub fn new() -> Self {
        BatchUpdate::default()
    }

    /// Number of unit (edge) updates — the `|ΔG|` of the paper.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the update contains no edge operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Declare a node that will be introduced by this update, given the
    /// target graph's current node count. Returns the id the node will have
    /// once the update is applied.
    pub fn add_node(&mut self, base_node_count: usize, label: Sym, attrs: AttrMap) -> NodeId {
        let id = NodeId((base_node_count + self.new_nodes.len()) as u32);
        self.new_nodes.push(NewNode { label, attrs });
        id
    }

    /// Queue an edge insertion.
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) {
        self.ops.push(EdgeOp::Insert(EdgeRef::new(src, dst, label)));
    }

    /// Queue an edge deletion.
    pub fn delete_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) {
        self.ops.push(EdgeOp::Delete(EdgeRef::new(src, dst, label)));
    }

    /// Edges inserted by this update (`ΔG⁺`).
    pub fn insertions(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EdgeOp::Insert(e) => Some(*e),
            EdgeOp::Delete(_) => None,
        })
    }

    /// Edges deleted by this update (`ΔG⁻`).
    pub fn deletions(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.ops.iter().filter_map(|op| match op {
            EdgeOp::Delete(e) => Some(*e),
            EdgeOp::Insert(_) => None,
        })
    }

    /// The nodes touched by any unit update — the BFS sources for the
    /// `G_{dΣ}(ΔG)` neighbourhood.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .ops
            .iter()
            .flat_map(|op| {
                let e = op.edge();
                [e.src, e.dst]
            })
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Ratio of insertions to deletions (the experiment parameter `γ`);
    /// `None` when there are no deletions.
    pub fn insert_delete_ratio(&self) -> Option<f64> {
        let ins = self.insertions().count();
        let del = self.deletions().count();
        if del == 0 {
            None
        } else {
            Some(ins as f64 / del as f64)
        }
    }

    /// Append `other`'s new nodes and edge operations to this update.
    ///
    /// This is the fold a long-lived session performs after each served
    /// batch: if `self` applies cleanly to a base graph `G` and `other`
    /// applies cleanly to `G ⊕ self`, the merged update applies cleanly to
    /// `G` and produces the same graph.  The id contract lines up by
    /// construction — `other`'s new nodes must have been allocated against
    /// `G ⊕ self`'s node count, which is exactly where the merged new-node
    /// list continues.
    pub fn merge(&mut self, other: &BatchUpdate) {
        self.new_nodes.extend(other.new_nodes.iter().cloned());
        self.ops.extend(other.ops.iter().copied());
    }

    /// Check that this update would apply cleanly to `base`, without
    /// panicking and without materialising anything.
    ///
    /// Walks the operation sequence with the same net insert/delete
    /// bookkeeping as [`crate::DeltaOverlay::new`] and [`BatchUpdate::apply`],
    /// but reports the first offending operation as a typed [`UpdateError`]
    /// instead of asserting — the validation a server must run on an
    /// untrusted client batch before handing it to the overlay constructor
    /// (whose invalid-update path is a panic by design).
    pub fn validate_against<V: GraphView + ?Sized>(&self, base: &V) -> Result<(), UpdateError> {
        let total_nodes = base.node_count() + self.new_nodes.len();
        let mut added: HashSet<EdgeRef> = HashSet::new();
        let mut removed: HashSet<EdgeRef> = HashSet::new();
        for op in &self.ops {
            let e = op.edge();
            for end in [e.src, e.dst] {
                if end.index() >= total_nodes {
                    return Err(UpdateError::UnknownNode(end));
                }
            }
            let in_base = e.src.index() < base.node_count()
                && e.dst.index() < base.node_count()
                && base.has_edge(e.src, e.dst, e.label);
            let currently_present = added.contains(&e) || (in_base && !removed.contains(&e));
            match op {
                EdgeOp::Insert(_) => {
                    if currently_present {
                        return Err(UpdateError::InsertExisting(e));
                    }
                    if !removed.remove(&e) {
                        added.insert(e);
                    }
                }
                EdgeOp::Delete(_) => {
                    if !currently_present {
                        return Err(UpdateError::DeleteMissing(e));
                    }
                    if !added.remove(&e) {
                        removed.insert(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply the update to `graph` in place, producing `G ⊕ ΔG`.
    ///
    /// New nodes are appended first, then edge operations are applied in
    /// order.  The method validates every operation and fails fast without
    /// attempting to roll back (callers that need atomicity apply updates to
    /// a clone, which is also what the detectors do).
    pub fn apply(&self, graph: &mut Graph) -> Result<(), UpdateError> {
        for node in &self.new_nodes {
            graph.add_node(node.label, node.attrs.clone());
        }
        for op in &self.ops {
            let e = op.edge();
            if !graph.contains_node(e.src) {
                return Err(UpdateError::UnknownNode(e.src));
            }
            if !graph.contains_node(e.dst) {
                return Err(UpdateError::UnknownNode(e.dst));
            }
            match op {
                EdgeOp::Insert(e) => graph
                    .add_edge(e.src, e.dst, e.label)
                    .map_err(|_| UpdateError::InsertExisting(*e))?,
                EdgeOp::Delete(e) => graph
                    .remove_edge(e.src, e.dst, e.label)
                    .map_err(|_| UpdateError::DeleteMissing(*e))?,
            }
        }
        Ok(())
    }

    /// Return `G ⊕ ΔG` as a new graph, leaving `graph` untouched.
    pub fn applied_to(&self, graph: &Graph) -> Result<Graph, UpdateError> {
        let mut updated = graph.clone();
        self.apply(&mut updated)?;
        Ok(updated)
    }
}

ngd_json::impl_json_struct!(BatchUpdate { new_nodes, ops });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::intern;
    use crate::value::Value;

    fn small_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let a = g.add_node_named("a", AttrMap::new());
        let b = g.add_node_named("b", AttrMap::new());
        let c = g.add_node_named("c", AttrMap::new());
        g.add_edge_named(a, b, "e").unwrap();
        g.add_edge_named(b, c, "e").unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn insert_and_delete_edges() {
        let (g, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[2], n[0], intern("e"));
        delta.delete_edge(n[0], n[1], intern("e"));
        let updated = delta.applied_to(&g).unwrap();
        assert!(updated.has_edge(n[2], n[0], intern("e")));
        assert!(!updated.has_edge(n[0], n[1], intern("e")));
        assert_eq!(updated.edge_count(), 2);
        // original untouched
        assert!(g.has_edge(n[0], n[1], intern("e")));
    }

    #[test]
    fn insertions_may_add_new_nodes() {
        let (g, n) = small_graph();
        let mut delta = BatchUpdate::new();
        let new = delta.add_node(
            g.node_count(),
            intern("account"),
            AttrMap::from_pairs([("follower", Value::Int(2))]),
        );
        delta.insert_edge(n[0], new, intern("refersTo"));
        let updated = delta.applied_to(&g).unwrap();
        assert_eq!(updated.node_count(), 4);
        assert!(updated.has_edge(n[0], new, intern("refersTo")));
        assert_eq!(updated.attr(new, intern("follower")), Some(&Value::Int(2)));
    }

    #[test]
    fn deleting_missing_edge_fails() {
        let (g, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.delete_edge(n[0], n[2], intern("e"));
        assert_eq!(
            delta.applied_to(&g).unwrap_err(),
            UpdateError::DeleteMissing(EdgeRef::new(n[0], n[2], intern("e")))
        );
    }

    #[test]
    fn inserting_existing_edge_fails() {
        let (g, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[0], n[1], intern("e"));
        assert_eq!(
            delta.applied_to(&g).unwrap_err(),
            UpdateError::InsertExisting(EdgeRef::new(n[0], n[1], intern("e")))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let (g, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[0], NodeId(42), intern("e"));
        assert_eq!(
            delta.applied_to(&g).unwrap_err(),
            UpdateError::UnknownNode(NodeId(42))
        );
    }

    #[test]
    fn touched_nodes_dedups_and_sorts() {
        let (_, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[2], n[0], intern("x"));
        delta.delete_edge(n[0], n[1], intern("e"));
        assert_eq!(delta.touched_nodes(), vec![n[0], n[1], n[2]]);
    }

    #[test]
    fn split_views_and_ratio() {
        let (_, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[2], n[0], intern("x"));
        delta.insert_edge(n[1], n[0], intern("y"));
        delta.delete_edge(n[0], n[1], intern("e"));
        assert_eq!(delta.insertions().count(), 2);
        assert_eq!(delta.deletions().count(), 1);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta.insert_delete_ratio(), Some(2.0));
    }

    #[test]
    fn merge_concatenates_and_applies_like_sequential_batches() {
        let (g, n) = small_graph();
        let mut first = BatchUpdate::new();
        first.delete_edge(n[0], n[1], intern("e"));
        let d = first.add_node(g.node_count(), intern("d"), AttrMap::new());
        first.insert_edge(n[0], d, intern("f"));

        let after_first = first.applied_to(&g).unwrap();
        let mut second = BatchUpdate::new();
        // Allocated against `G ⊕ first`, as a session would.
        let e2 = second.add_node(after_first.node_count(), intern("d"), AttrMap::new());
        second.insert_edge(d, e2, intern("f"));
        second.insert_edge(n[0], n[1], intern("e")); // re-insert what `first` deleted
        let expected = second.applied_to(&after_first).unwrap();

        let mut merged = first.clone();
        merged.merge(&second);
        let via_merge = merged.applied_to(&g).unwrap();
        assert_eq!(via_merge.node_count(), expected.node_count());
        assert_eq!(via_merge.edge_count(), expected.edge_count());
        assert_eq!(via_merge.edge_vec(), expected.edge_vec());
    }

    #[test]
    fn validate_against_accepts_what_apply_accepts() {
        let (g, n) = small_graph();
        let snap = g.freeze();
        let mut delta = BatchUpdate::new();
        let d = delta.add_node(g.node_count(), intern("d"), AttrMap::new());
        delta.delete_edge(n[0], n[1], intern("e"));
        delta.insert_edge(n[0], n[1], intern("e"));
        delta.insert_edge(n[2], d, intern("f"));
        assert_eq!(delta.validate_against(&snap), Ok(()));
        assert!(delta.applied_to(&g).is_ok());
    }

    #[test]
    fn validate_against_reports_each_failure_mode() {
        let (g, n) = small_graph();
        let snap = g.freeze();

        let mut unknown = BatchUpdate::new();
        unknown.insert_edge(n[0], NodeId(99), intern("e"));
        assert_eq!(
            unknown.validate_against(&snap),
            Err(UpdateError::UnknownNode(NodeId(99)))
        );

        let mut existing = BatchUpdate::new();
        existing.insert_edge(n[0], n[1], intern("e"));
        assert_eq!(
            existing.validate_against(&snap),
            Err(UpdateError::InsertExisting(EdgeRef::new(
                n[0],
                n[1],
                intern("e")
            )))
        );

        let mut missing = BatchUpdate::new();
        missing.delete_edge(n[2], n[0], intern("ghost"));
        assert_eq!(
            missing.validate_against(&snap),
            Err(UpdateError::DeleteMissing(EdgeRef::new(
                n[2],
                n[0],
                intern("ghost")
            )))
        );

        // Inserting the same edge twice within the batch is caught by the
        // net bookkeeping, not just the base lookup.
        let mut twice = BatchUpdate::new();
        twice.insert_edge(n[2], n[0], intern("x"));
        twice.insert_edge(n[2], n[0], intern("x"));
        assert_eq!(
            twice.validate_against(&snap),
            Err(UpdateError::InsertExisting(EdgeRef::new(
                n[2],
                n[0],
                intern("x")
            )))
        );
    }

    #[test]
    fn json_roundtrip() {
        let (_, n) = small_graph();
        let mut delta = BatchUpdate::new();
        delta.insert_edge(n[2], n[0], intern("x"));
        delta.delete_edge(n[0], n[1], intern("e"));
        delta.add_node(
            3,
            intern("account"),
            AttrMap::from_pairs([("v", Value::Int(1))]),
        );
        let json = ngd_json::to_string(&delta);
        let back: BatchUpdate = ngd_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }
}
