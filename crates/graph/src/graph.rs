//! The directed property graph `G = (V, E, L, F_A)`.
//!
//! Nodes are stored in a dense arena indexed by [`NodeId`]; adjacency is kept
//! as per-node out- and in-lists of `(neighbour, edge-label)` pairs.  A
//! label index (`label → node ids`) is maintained for candidate selection in
//! the matcher.  Edges are identified by `(src, dst, label)` and the graph
//! is a *set* of edges: inserting a duplicate is an error, matching the
//! paper's `E ⊆ V × V` formulation (per label).

use crate::attrs::AttrMap;
use crate::interner::{intern, Sym};
use crate::value::Value;
use crate::{GraphError, Result};
use ngd_json::{FromJson, Json, ToJson};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A dense node identifier (index into the node arena).
///
/// `repr(transparent)` over `u32` is part of the public contract: the
/// on-disk snapshot format ([`crate::persist`]) reinterprets memory-mapped
/// `u32` arrays as `&[NodeId]` without copying.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        Json::Int(i64::from(self.0))
    }
}

impl FromJson for NodeId {
    fn from_json(value: &Json) -> ngd_json::Result<Self> {
        u32::from_json(value).map(NodeId)
    }
}

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Label and attribute payload of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeData {
    /// The node label `L(v)` from the alphabet `Γ`.
    pub label: Sym,
    /// The attribute tuple `F_A(v)`.
    pub attrs: AttrMap,
}

ngd_json::impl_json_struct!(NodeData { label, attrs });

/// A fully-specified directed labelled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeRef {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge label `L(e)`.
    pub label: Sym,
}

impl EdgeRef {
    /// Construct an edge reference.
    pub fn new(src: NodeId, dst: NodeId, label: Sym) -> Self {
        EdgeRef { src, dst, label }
    }
}

ngd_json::impl_json_struct!(EdgeRef { src, dst, label });

/// A directed property graph (the mutable build/update representation;
/// freeze read-mostly graphs into a [`crate::CsrSnapshot`] for hot paths).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<NodeData>,
    /// Outgoing adjacency: `out[v] = [(w, label), …]` for edges `v → w`.
    out: Vec<Vec<(NodeId, Sym)>>,
    /// Incoming adjacency: `inn[v] = [(u, label), …]` for edges `u → v`.
    inn: Vec<Vec<(NodeId, Sym)>>,
    /// Node ids grouped by label, for candidate selection.
    label_index: HashMap<Sym, Vec<NodeId>>,
    /// Every edge as a set, for O(1) `has_edge` / duplicate checks —
    /// without it, bulk loads pay an O(deg) adjacency scan per insertion,
    /// which is quadratic on hub-heavy graphs.
    edge_set: HashSet<EdgeRef>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// An empty graph with node capacity pre-reserved.
    pub fn with_capacity(nodes: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
            label_index: HashMap::new(),
            edge_set: HashSet::new(),
            edge_count: 0,
        }
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node with the given label and attributes, returning its id.
    pub fn add_node(&mut self, label: Sym, attrs: AttrMap) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { label, attrs });
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.label_index.entry(label).or_default().push(id);
        id
    }

    /// Add a node by label name (interned), convenience for builders/tests.
    pub fn add_node_named(&mut self, label: &str, attrs: AttrMap) -> NodeId {
        self.add_node(intern(label), attrs)
    }

    /// Check that a node id is valid.
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    fn check_node(&self, id: NodeId) -> Result<()> {
        if self.contains_node(id) {
            Ok(())
        } else {
            Err(GraphError::NodeNotFound(id))
        }
    }

    /// Immutable access to a node's payload.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// Fallible access to a node's payload.
    pub fn try_node(&self, id: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(id.index())
            .ok_or(GraphError::NodeNotFound(id))
    }

    /// Mutable access to a node's payload.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The label of a node.
    pub fn label(&self, id: NodeId) -> Sym {
        self.nodes[id.index()].label
    }

    /// The attribute tuple of a node.
    pub fn attrs(&self, id: NodeId) -> &AttrMap {
        &self.nodes[id.index()].attrs
    }

    /// A single attribute of a node.
    pub fn attr(&self, id: NodeId, name: Sym) -> Option<&Value> {
        self.nodes[id.index()].attrs.get(name)
    }

    /// Set an attribute on a node.
    pub fn set_attr(&mut self, id: NodeId, name: Sym, value: Value) {
        self.nodes[id.index()].attrs.set(name, value);
    }

    /// Insert a directed labelled edge.
    ///
    /// Returns [`GraphError::DuplicateEdge`] if the exact `(src, dst, label)`
    /// triple already exists, and [`GraphError::NodeNotFound`] if either
    /// endpoint is invalid.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> Result<()> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if !self.edge_set.insert(EdgeRef::new(src, dst, label)) {
            return Err(GraphError::DuplicateEdge { src, dst });
        }
        self.out[src.index()].push((dst, label));
        self.inn[dst.index()].push((src, label));
        self.edge_count += 1;
        Ok(())
    }

    /// Insert an edge with a named (interned) label.
    pub fn add_edge_named(&mut self, src: NodeId, dst: NodeId, label: &str) -> Result<()> {
        self.add_edge(src, dst, intern(label))
    }

    /// Remove a directed labelled edge.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> Result<()> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if !self.edge_set.remove(&EdgeRef::new(src, dst, label)) {
            return Err(GraphError::EdgeNotFound { src, dst });
        }
        self.out[src.index()].retain(|&(d, l)| !(d == dst && l == label));
        self.inn[dst.index()].retain(|&(s, l)| !(s == src && l == label));
        self.edge_count -= 1;
        Ok(())
    }

    /// Does the exact edge `(src, dst, label)` exist?
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        self.edge_set.contains(&EdgeRef::new(src, dst, label))
    }

    /// Does any edge from `src` to `dst` exist, regardless of label?
    pub fn has_edge_any_label(&self, src: NodeId, dst: NodeId) -> bool {
        self.contains_node(src)
            && self.contains_node(dst)
            && self.out[src.index()].iter().any(|&(d, _)| d == dst)
    }

    /// Outgoing `(neighbour, edge-label)` pairs of a node.
    pub fn out_neighbors(&self, id: NodeId) -> &[(NodeId, Sym)] {
        &self.out[id.index()]
    }

    /// Incoming `(neighbour, edge-label)` pairs of a node.
    pub fn in_neighbors(&self, id: NodeId) -> &[(NodeId, Sym)] {
        &self.inn[id.index()]
    }

    /// Iterate over all undirected neighbours (successors then predecessors),
    /// with the connecting edge expressed in its directed form.
    pub fn undirected_neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeRef)> + '_ {
        let outgoing = self.out[id.index()]
            .iter()
            .map(move |&(dst, label)| (dst, EdgeRef::new(id, dst, label)));
        let incoming = self.inn[id.index()]
            .iter()
            .map(move |&(src, label)| (src, EdgeRef::new(src, id, label)));
        outgoing.chain(incoming)
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.inn[id.index()].len()
    }

    /// Total (undirected) degree of a node — the `|v.adj|` quantity used by
    /// the parallel detector's cost model.
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All nodes with the given label (empty slice if the label is unused).
    pub fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        self.label_index
            .get(&label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Distinct node labels present in the graph, with their populations.
    pub fn label_histogram(&self) -> Vec<(Sym, usize)> {
        let mut hist: Vec<(Sym, usize)> = self
            .label_index
            .iter()
            .map(|(l, v)| (*l, v.len()))
            .collect();
        hist.sort_by_key(|&(l, _)| l);
        hist
    }

    /// Iterate over every directed edge in the graph.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out.iter().enumerate().flat_map(|(src, adj)| {
            adj.iter()
                .map(move |&(dst, label)| EdgeRef::new(NodeId(src as u32), dst, label))
        })
    }

    /// Collect every edge into a vector (handy for tests and serialization).
    pub fn edge_vec(&self) -> Vec<EdgeRef> {
        self.edges().collect()
    }
}

impl ToJson for Graph {
    fn to_json(&self) -> Json {
        // Canonical encoding: node payloads in arena order plus the edge
        // list; adjacency, the label index and the edge set are derived
        // state and are rebuilt on decode.
        Json::Obj(vec![
            ("nodes".to_string(), self.nodes.to_json()),
            ("edges".to_string(), self.edge_vec().to_json()),
        ])
    }
}

impl FromJson for Graph {
    fn from_json(value: &Json) -> ngd_json::Result<Self> {
        let nodes: Vec<NodeData> = FromJson::from_json(value.field("nodes")?)?;
        let edges: Vec<EdgeRef> = FromJson::from_json(value.field("edges")?)?;
        let mut graph = Graph::with_capacity(nodes.len());
        for node in nodes {
            graph.add_node(node.label, node.attrs);
        }
        for edge in edges {
            graph
                .add_edge(edge.src, edge.dst, edge.label)
                .map_err(|e| ngd_json::JsonError::new(format!("invalid graph edge: {e}")))?;
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::intern;

    fn attrs(pairs: &[(&str, i64)]) -> AttrMap {
        AttrMap::from_pairs(pairs.iter().map(|&(k, v)| (k, Value::Int(v))))
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node_named("place", attrs(&[("population", 100)]));
        let b = g.add_node_named("place", attrs(&[("population", 200)]));
        let c = g.add_node_named("state", AttrMap::new());
        g.add_edge_named(a, c, "partOf").unwrap();
        g.add_edge_named(b, c, "partOf").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(a, c, intern("partOf")));
        assert!(!g.has_edge(c, a, intern("partOf")));
        assert!(g.has_edge_any_label(b, c));
    }

    #[test]
    fn duplicate_edge_rejected_but_different_label_allowed() {
        let mut g = Graph::new();
        let a = g.add_node_named("x", AttrMap::new());
        let b = g.add_node_named("y", AttrMap::new());
        g.add_edge_named(a, b, "knows").unwrap();
        assert_eq!(
            g.add_edge_named(a, b, "knows"),
            Err(GraphError::DuplicateEdge { src: a, dst: b })
        );
        // Same endpoints, different label is a different edge.
        g.add_edge_named(a, b, "likes").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_edge_updates_both_directions() {
        let mut g = Graph::new();
        let a = g.add_node_named("x", AttrMap::new());
        let b = g.add_node_named("y", AttrMap::new());
        g.add_edge_named(a, b, "e").unwrap();
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 1);
        g.remove_edge(a, b, intern("e")).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(a), 0);
        assert_eq!(g.degree(b), 0);
        assert_eq!(
            g.remove_edge(a, b, intern("e")),
            Err(GraphError::EdgeNotFound { src: a, dst: b })
        );
    }

    #[test]
    fn invalid_node_ids_are_rejected() {
        let mut g = Graph::new();
        let a = g.add_node_named("x", AttrMap::new());
        let ghost = NodeId(99);
        assert_eq!(
            g.add_edge_named(a, ghost, "e"),
            Err(GraphError::NodeNotFound(ghost))
        );
        assert!(g.try_node(ghost).is_err());
        assert!(!g.has_edge(a, ghost, intern("e")));
    }

    #[test]
    fn label_index_tracks_nodes() {
        let mut g = Graph::new();
        let a = g.add_node_named("account", AttrMap::new());
        let b = g.add_node_named("account", AttrMap::new());
        let _c = g.add_node_named("company", AttrMap::new());
        let accounts = g.nodes_with_label(intern("account"));
        assert_eq!(accounts, &[a, b]);
        assert_eq!(g.nodes_with_label(intern("nonexistent")), &[] as &[NodeId]);
        let hist = g.label_histogram();
        assert_eq!(hist.iter().map(|&(_, c)| c).sum::<usize>(), 3);
    }

    #[test]
    fn neighbors_and_degrees() {
        let mut g = Graph::new();
        let hub = g.add_node_named("hub", AttrMap::new());
        let mut spokes = Vec::new();
        for _ in 0..5 {
            let s = g.add_node_named("spoke", AttrMap::new());
            g.add_edge_named(hub, s, "to").unwrap();
            spokes.push(s);
        }
        g.add_edge_named(spokes[0], hub, "back").unwrap();
        assert_eq!(g.out_degree(hub), 5);
        assert_eq!(g.in_degree(hub), 1);
        assert_eq!(g.degree(hub), 6);
        let undirected: Vec<NodeId> = g.undirected_neighbors(hub).map(|(n, _)| n).collect();
        assert_eq!(undirected.len(), 6);
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let mut g = Graph::new();
        let a = g.add_node_named("a", AttrMap::new());
        let b = g.add_node_named("b", AttrMap::new());
        let c = g.add_node_named("c", AttrMap::new());
        g.add_edge_named(a, b, "e1").unwrap();
        g.add_edge_named(b, c, "e2").unwrap();
        g.add_edge_named(c, a, "e3").unwrap();
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&EdgeRef::new(a, b, intern("e1"))));
        assert!(edges.contains(&EdgeRef::new(c, a, intern("e3"))));
    }

    #[test]
    fn attribute_access_and_mutation() {
        let mut g = Graph::new();
        let v = g.add_node_named("village", attrs(&[("female", 600), ("male", 722)]));
        assert_eq!(g.attr(v, intern("female")), Some(&Value::Int(600)));
        g.set_attr(v, intern("total"), Value::Int(1572));
        assert_eq!(g.attr(v, intern("total")), Some(&Value::Int(1572)));
        assert_eq!(g.attrs(v).len(), 3);
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let mut g = Graph::new();
        let a = g.add_node_named("a", attrs(&[("v", 1)]));
        let b = g.add_node_named("b", attrs(&[("v", 2)]));
        g.add_edge_named(a, b, "e").unwrap();
        let json = ngd_json::to_string(&g);
        let back: Graph = ngd_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert!(back.has_edge(a, b, intern("e")));
        assert_eq!(back.attr(a, intern("v")), Some(&Value::Int(1)));
    }

    #[test]
    fn bulk_insertion_of_hub_edges_is_not_quadratic() {
        // 50k edges into a single hub: with the edge-set check this is
        // effectively linear; the old per-insert adjacency scan would make
        // this test take minutes.
        let mut g = Graph::new();
        let hub = g.add_node_named("hub", AttrMap::new());
        let spokes: Vec<NodeId> = (0..50_000)
            .map(|_| g.add_node_named("spoke", AttrMap::new()))
            .collect();
        let start = std::time::Instant::now();
        for &s in &spokes {
            g.add_edge_named(hub, s, "to").unwrap();
        }
        assert_eq!(g.edge_count(), 50_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "hub insertion took {:?}",
            start.elapsed()
        );
    }
}
