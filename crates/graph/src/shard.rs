//! Sharded per-fragment CSR snapshots for the parallel detectors.
//!
//! The paper's parallel detectors (Section 6.3) fragment `G` over `p`
//! processors.  [`ShardedSnapshot`] realises that fragmentation on top of
//! the frozen CSR representation: [`Graph::freeze_sharded`] (or
//! [`CsrSnapshot::shard`]) combines a [`Partition`] from
//! [`crate::partition`] with the global snapshot and builds one
//! **fragment snapshot** per fragment, each holding
//!
//! * the fragment's **owned nodes** (every node is owned by exactly one
//!   fragment) and their complete label-sorted adjacency runs, copied out
//!   of the global CSR into fragment-local arrays, plus
//! * a replicated **halo**: every node within `halo_depth` undirected hops
//!   of the fragment's border nodes, so that `d`-hop candidate generation
//!   near cut edges stays inside the fragment's own memory (the paper
//!   replicates the `dΣ`-neighbourhood of border nodes the same way).
//!
//! Node ids stay **global** everywhere a caller can observe them: a
//! fragment keeps a `local row ↔ global id` permutation (the same
//! machinery the label partition of [`CsrSnapshot`] uses), rows are
//! indexed locally, but neighbour entries store global ids.  Matches,
//! violations and deltas computed against a fragment are therefore
//! byte-identical to those computed against the shared snapshot.
//!
//! A [`FragmentView`] is the [`GraphView`] a detector worker holds.  Reads
//! of materialised (owned + halo) nodes are served from the fragment's own
//! arrays; adjacency reads of any other node fall back to the global
//! snapshot and are **counted** as cross-fragment candidate fetches — on a
//! real cluster each such read is a message to the owner, so the counter
//! is exactly the crossing-edge traffic the paper's communication cost
//! models (the detectors fold it into their `CostLedger`).  Label, triple
//! and node-count indexes are served globally without accounting: they are
//! the read-only dictionaries every processor replicates.

use crate::csr::{CsrSide, CsrSnapshot};
use crate::graph::{EdgeRef, Graph, NodeData, NodeId};
use crate::interner::Sym;
use crate::neighborhood::d_neighbors_many;
use crate::partition::{partition, Partition, PartitionStrategy};
use crate::value::Value;
use crate::view::GraphView;
use std::sync::atomic::{AtomicU64, Ordering};

/// One fragment's frozen CSR: owned nodes plus the replicated halo, with
/// complete adjacency runs in fragment-local arrays.
#[derive(Debug, Clone)]
pub struct FragmentSnapshot {
    /// Fragment index in `0..p`.
    id: usize,
    /// Global ids of the materialised nodes, owned first, halo after
    /// (each segment sorted by id).
    local_to_global: Vec<NodeId>,
    /// Number of owned nodes (`local_to_global[..owned_count]`).
    owned_count: usize,
    /// Dense global id → local row translation table (`u32::MAX` = not
    /// materialised here); one O(1) array read on every adjacency access.
    /// Dense beats a hash map on the hot path but costs 4·|V| bytes per
    /// fragment (O(p·|V|) across the snapshot) — swap for a paged or
    /// hashed table when fragments move out-of-process.
    global_to_local: Vec<u32>,
    /// Node payloads, indexed by local row.
    nodes: Vec<NodeData>,
    /// Out-adjacency, rows local, neighbour entries global.
    out: CsrSide,
    /// In-adjacency, rows local, neighbour entries global.
    inn: CsrSide,
    /// Number of directed edges whose source row is materialised.
    edge_entries: usize,
}

impl FragmentSnapshot {
    /// Fragment index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Global ids of the owned nodes.
    pub fn owned_nodes(&self) -> &[NodeId] {
        &self.local_to_global[..self.owned_count]
    }

    /// Global ids of the replicated halo nodes.
    pub fn halo_nodes(&self) -> &[NodeId] {
        &self.local_to_global[self.owned_count..]
    }

    /// Number of materialised (owned + halo) nodes.
    pub fn materialized_count(&self) -> usize {
        self.local_to_global.len()
    }

    /// Is the node's adjacency materialised in this fragment?
    pub fn is_local(&self, id: NodeId) -> bool {
        self.row(id).is_some()
    }

    /// Does this fragment own the node?
    pub fn owns(&self, id: NodeId) -> bool {
        self.row(id)
            .is_some_and(|row| row.index() < self.owned_count)
    }

    /// Number of out-edge entries replicated into this fragment.
    pub fn edge_entries(&self) -> usize {
        self.edge_entries
    }

    #[inline]
    fn row(&self, id: NodeId) -> Option<NodeId> {
        match self.global_to_local.get(id.index()) {
            Some(&row) if row != u32::MAX => Some(NodeId(row)),
            _ => None,
        }
    }

    // Raw-array accessors for the on-disk snapshot writer
    // ([`crate::persist`]), mirroring [`crate::csr::CsrSnapshot`]'s.

    pub(crate) fn raw_local_to_global(&self) -> &[NodeId] {
        &self.local_to_global
    }

    pub(crate) fn raw_global_to_local(&self) -> &[u32] {
        &self.global_to_local
    }

    pub(crate) fn raw_nodes(&self) -> &[NodeData] {
        &self.nodes
    }

    pub(crate) fn raw_out(&self) -> &CsrSide {
        &self.out
    }

    pub(crate) fn raw_in(&self) -> &CsrSide {
        &self.inn
    }
}

/// A partitioned set of frozen fragment snapshots over one global
/// [`CsrSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    global: CsrSnapshot,
    partition: Partition,
    halo_depth: usize,
    fragments: Vec<FragmentSnapshot>,
}

impl ShardedSnapshot {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// The partition the shards were built from.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The global snapshot backing remote reads.
    pub fn global(&self) -> &CsrSnapshot {
        &self.global
    }

    /// The halo replication depth the shards were built with.
    pub fn halo_depth(&self) -> usize {
        self.halo_depth
    }

    /// One fragment's snapshot.
    pub fn fragment(&self, idx: usize) -> &FragmentSnapshot {
        &self.fragments[idx]
    }

    /// A worker's [`GraphView`] over fragment `idx`.
    pub fn fragment_view(&self, idx: usize) -> FragmentView<'_> {
        FragmentView {
            fragment: &self.fragments[idx],
            global: &self.global,
            remote_fetches: AtomicU64::new(0),
        }
    }

    /// Fragment a work item anchored at `node` routes to (see
    /// [`Partition::route_of`]).
    pub fn route_of(&self, node: NodeId) -> usize {
        self.partition.route_of(node)
    }

    /// Total materialised nodes across fragments divided by `|V|`: 1.0
    /// means no replication, larger values measure the memory paid for the
    /// halo (0.0 on an empty graph).
    pub fn replication_factor(&self) -> f64 {
        let total: usize = self
            .fragments
            .iter()
            .map(FragmentSnapshot::materialized_count)
            .sum();
        let n = GraphView::node_count(&self.global);
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

/// Build the per-fragment snapshots of `partition` over any [`GraphView`]
/// of the global graph.
///
/// [`Graph::freeze_sharded`] hands it the frozen [`CsrSnapshot`].
/// Snapshot compaction ([`crate::persist::CompactionWriter`]) no longer
/// goes through here: it classifies the net delta per fragment, byte-copies
/// untouched section groups from the old file, and rebuilds touched
/// fragments by slice gathers from the merged global arrays — relying on
/// the invariant this builder establishes, that a fragment row's encoded
/// content (complete runs, global neighbour ids, `(label, neighbour)`
/// order, self-loop parity of one entry per side) equals the global
/// file-space content of the same node.  Per-list entry order does not
/// matter ([`CsrSide::build`] sorts every run), so any view produces
/// identical fragments for the same logical graph.
pub(crate) fn build_fragments_from_view<G: GraphView + ?Sized>(
    global: &G,
    partition: &Partition,
    halo_depth: usize,
) -> Vec<FragmentSnapshot> {
    partition
        .fragments
        .iter()
        .map(|frag| {
            // Local node set: owned nodes, then every non-owned node
            // within `halo_depth` hops of the fragment's border nodes.
            // Any search path that leaves owned territory crosses the
            // cut at a border node, so N_d(owned) ⊆ owned ∪ N_d(border).
            let mut owned: Vec<NodeId> = frag.nodes.clone();
            owned.sort_unstable();
            let reach = d_neighbors_many(global, frag.border_nodes.iter().copied(), halo_depth);
            let mut halo: Vec<NodeId> = reach
                .nodes()
                .filter(|n| owned.binary_search(n).is_err())
                .collect();
            halo.sort_unstable();

            let owned_count = owned.len();
            let mut local_to_global = owned;
            local_to_global.extend_from_slice(&halo);
            let mut global_to_local = vec![u32::MAX; GraphView::node_count(global)];
            for (row, &id) in local_to_global.iter().enumerate() {
                global_to_local[id.index()] = row as u32;
            }
            let nodes: Vec<NodeData> = local_to_global
                .iter()
                .map(|&id| NodeData {
                    label: GraphView::label(global, id),
                    attrs: GraphView::attrs_of(global, id).clone(),
                })
                .collect();
            // Complete runs per materialised node, neighbour entries kept
            // global, both directions filled from ONE undirected pass per
            // node (the same adjacency volume the CSR-copying path read).
            // A self-loop is emitted once per side with an identical
            // `EdgeRef`; the first emission goes to the out run and the
            // second to the in run, tracked lazily — the tiny parity list
            // only ever allocates on a node that actually has a loop.
            let mut out_lists: Vec<Vec<(Sym, NodeId)>> = vec![Vec::new(); local_to_global.len()];
            let mut in_lists: Vec<Vec<(Sym, NodeId)>> = vec![Vec::new(); local_to_global.len()];
            for (row, &id) in local_to_global.iter().enumerate() {
                let (out_list, in_list) = (&mut out_lists[row], &mut in_lists[row]);
                let mut loop_parity: Vec<(Sym, bool)> = Vec::new();
                GraphView::for_each_undirected(global, id, &mut |_, e| {
                    if e.src == id && e.dst == id {
                        match loop_parity.iter_mut().find(|(l, _)| *l == e.label) {
                            // Second emission of this loop edge: in run.
                            Some(entry) if entry.1 => {
                                entry.1 = false;
                                in_list.push((e.label, id));
                            }
                            // First emission (again): out run.
                            Some(entry) => {
                                entry.1 = true;
                                out_list.push((e.label, id));
                            }
                            None => {
                                loop_parity.push((e.label, true));
                                out_list.push((e.label, id));
                            }
                        }
                    } else if e.src == id {
                        out_list.push((e.label, e.dst));
                    } else {
                        in_list.push((e.label, e.src));
                    }
                });
            }
            let edge_entries = out_lists.iter().map(Vec::len).sum();
            FragmentSnapshot {
                id: frag.id,
                local_to_global,
                owned_count,
                global_to_local,
                nodes,
                out: CsrSide::build(out_lists),
                inn: CsrSide::build(in_lists),
                edge_entries,
            }
        })
        .collect()
}

impl CsrSnapshot {
    /// Shard this snapshot along `partition`, replicating a halo of
    /// `halo_depth` undirected hops around every fragment's border nodes.
    ///
    /// Pass the rule-set diameter `dΣ` as `halo_depth` to make the
    /// detectors' candidate generation local for every match anchored at
    /// an owned node; smaller depths trade replicated memory for remote
    /// fetches (all still answered correctly via the global fallback).
    ///
    /// Clones the snapshot and the partition into the result; when the
    /// caller is done with both, [`CsrSnapshot::into_sharded`] avoids the
    /// copies.
    pub fn shard(&self, partition: &Partition, halo_depth: usize) -> ShardedSnapshot {
        self.clone().into_sharded(partition.clone(), halo_depth)
    }

    /// As [`CsrSnapshot::shard`], consuming the snapshot and partition so
    /// no second copy of the global arrays is ever held.
    pub fn into_sharded(self, partition: Partition, halo_depth: usize) -> ShardedSnapshot {
        let fragments = build_fragments_from_view(&self, &partition, halo_depth);
        ShardedSnapshot {
            global: self,
            partition,
            halo_depth,
            fragments,
        }
    }
}

impl Graph {
    /// Freeze the graph and shard it into `parts` fragments with the given
    /// partitioning strategy and halo depth — the one-call entry point the
    /// sharded detectors use.
    pub fn freeze_sharded(
        &self,
        parts: usize,
        strategy: PartitionStrategy,
        halo_depth: usize,
    ) -> ShardedSnapshot {
        let snapshot = self.freeze();
        let part = partition(&snapshot, parts, strategy);
        snapshot.into_sharded(part, halo_depth)
    }
}

/// A detector worker's read view of one fragment: local CSR arrays for
/// materialised nodes, an *accounted* global fallback for everything else.
#[derive(Debug)]
pub struct FragmentView<'a> {
    fragment: &'a FragmentSnapshot,
    global: &'a CsrSnapshot,
    /// Adjacency reads served by the global fallback — each one models a
    /// candidate fetch from the owning fragment.
    remote_fetches: AtomicU64,
}

impl<'a> FragmentView<'a> {
    /// The fragment this view reads.
    pub fn fragment(&self) -> &'a FragmentSnapshot {
        self.fragment
    }

    /// Cross-fragment candidate fetches performed through this view so far.
    pub fn remote_fetches(&self) -> u64 {
        self.remote_fetches.load(Ordering::Relaxed)
    }

    #[inline]
    fn local_row(&self, id: NodeId) -> Option<NodeId> {
        self.fragment.row(id)
    }

    /// Record one remote adjacency fetch.
    #[inline]
    fn count_remote(&self) {
        self.remote_fetches.fetch_add(1, Ordering::Relaxed);
    }
}

impl<'a> GraphView for FragmentView<'a> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self.global)
    }

    fn edge_count(&self) -> usize {
        GraphView::edge_count(self.global)
    }

    fn contains_node(&self, id: NodeId) -> bool {
        GraphView::contains_node(self.global, id)
    }

    fn label(&self, id: NodeId) -> Sym {
        match self.local_row(id) {
            Some(row) => self.fragment.nodes[row.index()].label,
            None => GraphView::label(self.global, id),
        }
    }

    fn attr(&self, id: NodeId, name: Sym) -> Option<&Value> {
        match self.local_row(id) {
            Some(row) => self.fragment.nodes[row.index()].attrs.get(name),
            None => GraphView::attr(self.global, id, name),
        }
    }

    fn attrs_of(&self, id: NodeId) -> &crate::attrs::AttrMap {
        match self.local_row(id) {
            Some(row) => &self.fragment.nodes[row.index()].attrs,
            None => GraphView::attrs_of(self.global, id),
        }
    }

    fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        // Prefer whichever endpoint is materialised; runs are complete, so
        // one local endpoint suffices.
        if let Some(row) = self.local_row(src) {
            return self.fragment.out.contains(row, label, dst);
        }
        if let Some(row) = self.local_row(dst) {
            return self.fragment.inn.contains(row, label, src);
        }
        if !GraphView::contains_node(self.global, src)
            || !GraphView::contains_node(self.global, dst)
        {
            return false;
        }
        self.count_remote();
        GraphView::has_edge(self.global, src, dst, label)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        match self.local_row(id) {
            Some(row) => self.fragment.out.degree(row),
            None => {
                self.count_remote();
                GraphView::out_degree(self.global, id)
            }
        }
    }

    fn in_degree(&self, id: NodeId) -> usize {
        match self.local_row(id) {
            Some(row) => self.fragment.inn.degree(row),
            None => {
                self.count_remote();
                GraphView::in_degree(self.global, id)
            }
        }
    }

    fn label_count(&self, label: Sym) -> usize {
        // Replicated dictionary — global, unaccounted.
        GraphView::label_count(self.global, label)
    }

    fn nodes_with_label_vec(&self, label: Sym) -> Vec<NodeId> {
        GraphView::nodes_with_label_vec(self.global, label)
    }

    fn out_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.local_row(id) {
            Some(row) => self.fragment.out.labeled_range(row, label).len(),
            None => {
                self.count_remote();
                GraphView::out_labeled_count(self.global, id, label)
            }
        }
    }

    fn in_labeled_count(&self, id: NodeId, label: Sym) -> usize {
        match self.local_row(id) {
            Some(row) => self.fragment.inn.labeled_range(row, label).len(),
            None => {
                self.count_remote();
                GraphView::in_labeled_count(self.global, id, label)
            }
        }
    }

    fn out_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        match self.local_row(id) {
            Some(row) => Some(self.fragment.out.labeled_slice(row, label)),
            None => {
                self.count_remote();
                GraphView::out_labeled_slice(self.global, id, label)
            }
        }
    }

    fn in_labeled_slice(&self, id: NodeId, label: Sym) -> Option<&[NodeId]> {
        match self.local_row(id) {
            Some(row) => Some(self.fragment.inn.labeled_slice(row, label)),
            None => {
                self.count_remote();
                GraphView::in_labeled_slice(self.global, id, label)
            }
        }
    }

    fn for_each_out_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        match self.local_row(id) {
            Some(row) => {
                for &n in self.fragment.out.labeled_slice(row, label) {
                    f(n);
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_out_labeled(self.global, id, label, f);
            }
        }
    }

    fn for_each_in_labeled(&self, id: NodeId, label: Sym, f: &mut dyn FnMut(NodeId)) {
        match self.local_row(id) {
            Some(row) => {
                for &n in self.fragment.inn.labeled_slice(row, label) {
                    f(n);
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_in_labeled(self.global, id, label, f);
            }
        }
    }

    fn for_each_undirected(&self, id: NodeId, f: &mut dyn FnMut(NodeId, EdgeRef)) {
        match self.local_row(id) {
            Some(row) => {
                for (label, n) in self.fragment.out.entries(row) {
                    f(n, EdgeRef::new(id, n, label));
                }
                for (label, n) in self.fragment.inn.entries(row) {
                    f(n, EdgeRef::new(n, id, label));
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_undirected(self.global, id, f);
            }
        }
    }

    fn for_each_out(&self, id: NodeId, f: &mut dyn FnMut(NodeId, Sym)) {
        match self.local_row(id) {
            Some(row) => {
                for (label, n) in self.fragment.out.entries(row) {
                    f(n, label);
                }
            }
            None => {
                self.count_remote();
                GraphView::for_each_out(self.global, id, f);
            }
        }
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(EdgeRef)) {
        // Whole-graph iteration is a global scan by definition.
        GraphView::for_each_edge(self.global, f)
    }

    fn triple_run_len(&self, src_label: Sym, edge_label: Sym, dst_label: Sym) -> Option<usize> {
        GraphView::triple_run_len(self.global, src_label, edge_label, dst_label)
    }

    fn triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        GraphView::triple_endpoints(self.global, src_label, edge_label, dst_label, want_src)
    }

    fn labeled_triple_run_len(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
    ) -> Option<usize> {
        GraphView::labeled_triple_run_len(self.global, src_label, edge_label, dst_label)
    }

    fn labeled_triple_endpoints(
        &self,
        src_label: Sym,
        edge_label: Sym,
        dst_label: Sym,
        want_src: bool,
    ) -> Option<Vec<NodeId>> {
        GraphView::labeled_triple_endpoints(self.global, src_label, edge_label, dst_label, want_src)
    }
}

/// A view that counts the adjacency reads it could not serve locally —
/// the modelled cross-fragment communication of the parallel detectors.
pub trait RemoteAccounting {
    /// Cross-fragment candidate fetches performed through this view so far.
    fn remote_fetches(&self) -> u64;
}

impl<'a> RemoteAccounting for FragmentView<'a> {
    fn remote_fetches(&self) -> u64 {
        self.remote_fetches.load(Ordering::Relaxed)
    }
}

/// Read access to a fragmented snapshot, abstracted over storage.
///
/// The sharded detectors (`pdect_sharded` / `pinc_dect_sharded`) consume
/// this trait instead of [`ShardedSnapshot`] directly, so the same worker
/// loop runs over
///
/// * an in-memory [`ShardedSnapshot`] (workers read [`FragmentView`]s), and
/// * a memory-mapped [`crate::persist::MmapShardedSnapshot`] (workers read
///   [`crate::persist::MmapFragmentView`]s over the on-disk arrays).
///
/// Implementations must uphold the [`ShardedSnapshot`] contract: every node
/// is owned by exactly one fragment, worker views observe the full global
/// graph (falling back past their fragment where necessary), and fallback
/// reads are counted through [`RemoteAccounting`].
pub trait ShardedRead: Sync {
    /// The replicated global dictionary view (labels, triple index, …).
    type Global: GraphView + Sync;
    /// The per-worker fragment view.
    type Worker<'a>: GraphView + RemoteAccounting + Sync
    where
        Self: 'a;

    /// The global snapshot backing remote reads and candidate selection.
    fn global_view(&self) -> &Self::Global;

    /// Number of fragments (= workers).
    fn shard_count(&self) -> usize;

    /// Fragment a work item anchored at `node` routes to.
    fn route_to(&self, node: NodeId) -> usize;

    /// The partition the shards were built from.
    fn shard_partition(&self) -> &Partition;

    /// A worker's read view over fragment `idx`.
    fn worker_view(&self, idx: usize) -> Self::Worker<'_>;
}

impl ShardedRead for ShardedSnapshot {
    type Global = CsrSnapshot;
    type Worker<'a> = FragmentView<'a>;

    fn global_view(&self) -> &CsrSnapshot {
        self.global()
    }

    fn shard_count(&self) -> usize {
        self.fragment_count()
    }

    fn route_to(&self, node: NodeId) -> usize {
        self.route_of(node)
    }

    fn shard_partition(&self) -> &Partition {
        self.partition()
    }

    fn worker_view(&self, idx: usize) -> FragmentView<'_> {
        self.fragment_view(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;
    use crate::interner::intern;

    fn two_communities() -> Graph {
        // Two dense 6-cliques bridged by a single edge: an edge-cut
        // partitioner separates the communities cleanly.
        let mut g = Graph::new();
        let mut nodes = Vec::new();
        for c in 0..2 {
            let members: Vec<NodeId> = (0..6)
                .map(|i| {
                    g.add_node_named(
                        if i % 2 == 0 { "even" } else { "odd" },
                        AttrMap::from_pairs([("val", Value::Int(c * 10 + i))]),
                    )
                })
                .collect();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    g.add_edge_named(members[i], members[j], "intra").unwrap();
                }
            }
            nodes.push(members);
        }
        g.add_edge_named(nodes[0][5], nodes[1][0], "bridge")
            .unwrap();
        g
    }

    fn assert_view_matches_global(view: &FragmentView<'_>, global: &CsrSnapshot) {
        assert_eq!(GraphView::node_count(view), GraphView::node_count(global));
        assert_eq!(GraphView::edge_count(view), GraphView::edge_count(global));
        for idx in 0..GraphView::node_count(global) {
            let id = NodeId(idx as u32);
            assert_eq!(GraphView::label(view, id), GraphView::label(global, id));
            assert_eq!(
                GraphView::attr(view, id, intern("val")),
                GraphView::attr(global, id, intern("val"))
            );
            assert_eq!(view.out_degree(id), GraphView::out_degree(global, id));
            assert_eq!(view.in_degree(id), GraphView::in_degree(global, id));
            for label in ["intra", "bridge", "ghost"] {
                let l = intern(label);
                assert_eq!(
                    view.out_labeled_slice(id, l).unwrap(),
                    global.out_neighbors_labeled(id, l),
                    "out run of {id} along {label}"
                );
                assert_eq!(
                    view.in_labeled_slice(id, l).unwrap(),
                    global.in_neighbors_labeled(id, l),
                    "in run of {id} along {label}"
                );
            }
            let mut got = Vec::new();
            view.for_each_undirected(id, &mut |n, e| got.push((n, e)));
            let mut want = Vec::new();
            GraphView::for_each_undirected(global, id, &mut |n, e| want.push((n, e)));
            got.sort();
            want.sort();
            assert_eq!(got, want, "undirected neighbours of {id}");
        }
        let mut edges = Vec::new();
        view.for_each_edge(&mut |e| edges.push(e));
        assert_eq!(edges.len(), GraphView::edge_count(global));
    }

    #[test]
    fn every_node_is_owned_by_exactly_one_fragment() {
        let g = two_communities();
        for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::VertexCut] {
            let sharded = g.freeze_sharded(3, strategy, 1);
            let mut owners = vec![0usize; g.node_count()];
            for f in 0..sharded.fragment_count() {
                for &n in sharded.fragment(f).owned_nodes() {
                    owners[n.index()] += 1;
                    assert!(sharded.fragment(f).owns(n));
                }
            }
            assert!(owners.iter().all(|&c| c == 1), "{strategy:?}: {owners:?}");
        }
    }

    #[test]
    fn fragment_views_are_indistinguishable_from_the_global_snapshot() {
        let g = two_communities();
        let global = g.freeze();
        for strategy in [PartitionStrategy::EdgeCut, PartitionStrategy::VertexCut] {
            for halo in [0, 1, 2] {
                let part = partition(&global, 2, strategy);
                let sharded = global.shard(&part, halo);
                for f in 0..sharded.fragment_count() {
                    let view = sharded.fragment_view(f);
                    assert_view_matches_global(&view, &global);
                }
            }
        }
    }

    #[test]
    fn local_reads_of_owned_nodes_do_not_touch_the_global_fallback() {
        let g = two_communities();
        let sharded = g.freeze_sharded(2, PartitionStrategy::EdgeCut, 1);
        for f in 0..sharded.fragment_count() {
            let view = sharded.fragment_view(f);
            for &n in sharded.fragment(f).owned_nodes() {
                let _ = view.out_labeled_slice(n, intern("intra"));
                let _ = view.in_degree(n);
                view.for_each_undirected(n, &mut |_, _| {});
            }
            assert_eq!(view.remote_fetches(), 0, "fragment {f}");
        }
    }

    #[test]
    fn remote_reads_are_counted() {
        let g = two_communities();
        let sharded = g.freeze_sharded(2, PartitionStrategy::EdgeCut, 0);
        // With a zero-depth halo, a fragment materialises only its owned
        // nodes; reading the other community's adjacency must count.
        let view = sharded.fragment_view(0);
        let foreign: Vec<NodeId> = (0..g.node_count() as u32)
            .map(NodeId)
            .filter(|n| !sharded.fragment(0).is_local(*n))
            .collect();
        assert!(!foreign.is_empty());
        for &n in &foreign {
            view.for_each_out_labeled(n, intern("intra"), &mut |_| {});
        }
        assert_eq!(view.remote_fetches(), foreign.len() as u64);
    }

    #[test]
    fn halo_covers_the_d_neighborhood_of_owned_nodes() {
        let g = two_communities();
        let global = g.freeze();
        for d in [1, 2] {
            let part = partition(&global, 2, PartitionStrategy::EdgeCut);
            let sharded = global.shard(&part, d);
            for f in 0..sharded.fragment_count() {
                let frag = sharded.fragment(f);
                let reach = d_neighbors_many(&global, frag.owned_nodes().iter().copied(), d);
                for n in reach.nodes() {
                    assert!(
                        frag.is_local(n),
                        "fragment {f}: {n} within {d} hops of owned nodes but not local"
                    );
                }
            }
        }
    }

    #[test]
    fn replication_factor_grows_with_halo_depth() {
        let g = two_communities();
        let global = g.freeze();
        let part = partition(&global, 2, PartitionStrategy::EdgeCut);
        let r0 = global.shard(&part, 0).replication_factor();
        let r2 = global.shard(&part, 2).replication_factor();
        assert!((r0 - 1.0).abs() < 1e-9, "no halo means no replication");
        assert!(r2 > r0);
    }

    #[test]
    fn empty_and_degenerate_graphs_shard_cleanly() {
        let empty = Graph::new().freeze_sharded(4, PartitionStrategy::EdgeCut, 2);
        assert_eq!(empty.fragment_count(), 4);
        assert_eq!(empty.replication_factor(), 0.0);

        let mut single = Graph::new();
        single.add_node_named("only", AttrMap::new());
        let sharded = single.freeze_sharded(3, PartitionStrategy::VertexCut, 1);
        let owned: usize = (0..sharded.fragment_count())
            .map(|f| sharded.fragment(f).owned_nodes().len())
            .sum();
        assert_eq!(owned, 1);
        assert_eq!(
            sharded.route_of(NodeId(0)),
            sharded.partition().owner_of(NodeId(0))
        );
        assert!(sharded.route_of(NodeId(17)) < sharded.fragment_count());
    }
}
