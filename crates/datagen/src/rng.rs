//! A small deterministic RNG for the data simulators.
//!
//! The generators only need reproducible uniform draws, not cryptographic
//! quality, so this is a self-contained SplitMix64 (the stream used to seed
//! xoshiro-family generators: excellent equidistribution for 64-bit
//! outputs, trivially seedable, no external dependency).  The API mirrors
//! the subset of `rand::rngs::StdRng` the generators use — `seed_from_u64`,
//! `gen_range` over integer ranges, `gen_bool` — so generator code reads
//! the same as it would against `rand`.
//!
//! Determinism contract: a given seed produces the same stream on every
//! platform and in every release of this workspace.  Changing the stream
//! invalidates recorded experiment baselines, so don't.

use std::ops::{Range, RangeInclusive};

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the conventional u64 → f64 reduction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Widening-multiply range reduction (Lemire); the slight bias
        // without the rejection step is irrelevant for simulation and
        // keeps the stream a pure function of the draw count.
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Integer ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Integer element types usable with [`StdRng::gen_range`].  Generic (like
/// `rand`'s `SampleUniform`) so that integer-literal ranges unify with the
/// surrounding expression's type instead of defaulting to `i32`.
pub trait SampleUniform: Copy {
    /// Widen to a common signed type.
    fn to_i128(self) -> i128;
    /// Narrow back (the value is always within the sampled range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),+) => {
        $(
            impl SampleUniform for $ty {
                fn to_i128(self) -> i128 {
                    self as i128
                }
                fn from_i128(v: i128) -> Self {
                    v as $ty
                }
            }
        )+
    };
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(lo + rng.below((hi - lo) as u64) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(lo + rng.below((hi - lo + 1) as u64) as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
        // Single-point inclusive range is valid.
        assert_eq!(rng.gen_range(9..=9), 9);
    }

    #[test]
    fn range_draws_cover_the_space() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5usize);
    }
}
