//! NGD rule-set generator ("discovery-lite").
//!
//! The paper mines 100 NGDs per dataset with the discovery algorithm of
//! Fan et al. (SIGMOD'18, "Discovering graph functional dependencies"); the
//! mined rules have patterns of diameter 1–6, 1–4 literals and arithmetic
//! expressions of length 1–10, mixing trees, DAGs and cyclic shapes, and
//! are strongly satisfied by subgraphs of the dataset (Section 7, "NGDs").
//!
//! This module synthesises structurally comparable rule sets directly from
//! a data graph.  Each rule is built by
//!
//! 1. sampling a connected subgraph with a biased random walk (so that the
//!    pattern provably has at least one match — the sample itself);
//! 2. turning the sampled nodes into pattern variables (label-preserving,
//!    with a configurable wildcard probability) and the walked edges into
//!    pattern edges;
//! 3. attaching literals over the numeric attributes of the sampled nodes:
//!    premise literals are constructed to *hold* on the sample, and each
//!    consequence literal is constructed to hold or fail on the sample
//!    according to `violation_prob`, so the generated rule set produces a
//!    controllable number of violations in the graph it was mined from.
//!
//! Mining versus generating does not change detector behaviour — detectors
//! only see the rule set — which is why this substitution is sound for the
//! paper's experiments (DESIGN.md §5).

use crate::rng::StdRng;
use ngd_core::eval::{eval_expr, Evaluated};
use ngd_core::{CmpOp, Expr, Literal, Ngd, Pattern, RuleSet, Var};
use ngd_graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// Configuration of the rule generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleGenConfig {
    /// Number of rules to generate.
    pub count: usize,
    /// Minimum pattern size (nodes).
    pub min_nodes: usize,
    /// Maximum pattern size (nodes).
    pub max_nodes: usize,
    /// Maximum pattern diameter `dQ`; patterns exceeding it are rejected.
    pub max_diameter: usize,
    /// Maximum number of literals per rule (premise + consequence), 1–4 in
    /// the paper.
    pub max_literals: usize,
    /// Maximum number of attribute terms per arithmetic expression
    /// (expression "length", 1–10 in the paper).
    pub max_expr_terms: usize,
    /// Probability that a pattern node keeps the wildcard label `_`.
    pub wildcard_prob: f64,
    /// Probability that a consequence literal is constructed to *fail* on
    /// the sampled match (i.e. the sample becomes a violation).
    pub violation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RuleGenConfig {
    /// A paper-style configuration producing `count` rules with diameters
    /// up to `max_diameter`.
    pub fn paper_style(count: usize, max_diameter: usize) -> Self {
        RuleGenConfig {
            count,
            min_nodes: 2,
            max_nodes: (max_diameter + 2).min(7),
            max_diameter,
            max_literals: 4,
            max_expr_terms: 4,
            wildcard_prob: 0.15,
            violation_prob: 0.3,
            seed: 0x601D,
        }
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the violation probability.
    pub fn with_violation_prob(mut self, p: f64) -> Self {
        self.violation_prob = p;
        self
    }
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig::paper_style(20, 4)
    }
}

/// A sampled connected subgraph: nodes in discovery order and the directed
/// edges walked between them.
struct Sample {
    nodes: Vec<NodeId>,
    edges: Vec<(usize, usize, ngd_graph::Sym)>,
}

/// Sample a connected subgraph of `size` nodes by a random walk that
/// prefers extending the frontier (so larger samples tend to be longer,
/// i.e. of larger diameter).
fn sample_subgraph(graph: &Graph, size: usize, rng: &mut StdRng) -> Option<Sample> {
    if graph.node_count() == 0 {
        return None;
    }
    let start = NodeId(rng.gen_range(0..graph.node_count()) as u32);
    let mut nodes = vec![start];
    let mut index: BTreeMap<NodeId, usize> = BTreeMap::new();
    index.insert(start, 0);
    let mut edges = Vec::new();
    let mut frontier = start;
    let mut attempts = 0usize;
    while nodes.len() < size && attempts < size * 20 {
        attempts += 1;
        // Prefer growing from the most recent node; occasionally branch
        // from a random earlier one so DAG/tree shapes also appear.
        let anchor = if rng.gen_bool(0.7) {
            frontier
        } else {
            nodes[rng.gen_range(0..nodes.len())]
        };
        let neighbors: Vec<(NodeId, ngd_graph::EdgeRef)> =
            graph.undirected_neighbors(anchor).collect();
        if neighbors.is_empty() {
            break;
        }
        let (next, edge) = neighbors[rng.gen_range(0..neighbors.len())];
        let src_idx = match index.get(&edge.src) {
            Some(&i) => i,
            None => {
                index.insert(edge.src, nodes.len());
                nodes.push(edge.src);
                nodes.len() - 1
            }
        };
        let dst_idx = match index.get(&edge.dst) {
            Some(&i) => i,
            None => {
                index.insert(edge.dst, nodes.len());
                nodes.push(edge.dst);
                nodes.len() - 1
            }
        };
        if !edges.contains(&(src_idx, dst_idx, edge.label)) {
            edges.push((src_idx, dst_idx, edge.label));
        }
        frontier = next;
    }
    if edges.is_empty() {
        return None;
    }
    Some(Sample { nodes, edges })
}

/// Numeric attributes available on the sampled nodes, as `(variable index,
/// attribute name)` pairs.
fn numeric_attrs(graph: &Graph, sample: &Sample) -> Vec<(usize, ngd_graph::Sym)> {
    let mut out = Vec::new();
    for (idx, &node) in sample.nodes.iter().enumerate() {
        for (name, value) in graph.attrs(node).iter() {
            if value.is_numeric() {
                out.push((idx, name));
            }
        }
    }
    out
}

/// Build a random linear expression over up to `max_terms` of the available
/// attribute terms.
fn random_expr(
    attrs: &[(usize, ngd_graph::Sym)],
    vars: &[Var],
    max_terms: usize,
    rng: &mut StdRng,
) -> Expr {
    let terms = rng.gen_range(1..=max_terms.max(1)).min(attrs.len().max(1));
    let mut expr: Option<Expr> = None;
    for _ in 0..terms {
        let &(node_idx, attr) = &attrs[rng.gen_range(0..attrs.len())];
        let mut term = Expr::Attr(ngd_core::AttrRef::new(vars[node_idx], attr));
        let coeff = rng.gen_range(1..=3);
        if coeff > 1 {
            term = Expr::scale(coeff, term);
        }
        expr = Some(match expr {
            None => term,
            Some(acc) => {
                if rng.gen_bool(0.3) {
                    Expr::sub(acc, term)
                } else {
                    Expr::add(acc, term)
                }
            }
        });
    }
    expr.expect("at least one term is always generated")
}

/// Evaluate an expression on the sampled match, returning its integer floor
/// (the generator only needs a pivot constant, not the exact rational).
fn eval_on_sample(expr: &Expr, graph: &Graph, assignment: &[NodeId]) -> Option<i64> {
    match eval_expr(expr, graph, assignment) {
        Ok(Evaluated::Num(r)) => i64::try_from(r.floor()).ok(),
        _ => None,
    }
}

/// Build a literal `expr ⊗ c` that holds (or fails) on the sampled match.
fn pivot_literal(expr: Expr, value: i64, hold: bool, rng: &mut StdRng) -> Literal {
    // `expr` evaluates to at least `value` (its floor) on the sample, and
    // to at most `value + 1`.
    let op_holds: &[(CmpOp, i64)] = &[
        (CmpOp::Ge, value),
        (CmpOp::Le, value + 1),
        (CmpOp::Gt, value - 1),
        (CmpOp::Lt, value + 2),
        (CmpOp::Ne, value + 7),
    ];
    let op_fails: &[(CmpOp, i64)] = &[
        (CmpOp::Lt, value),
        (CmpOp::Gt, value + 1),
        (CmpOp::Le, value - 1),
        (CmpOp::Ge, value + 2),
        (CmpOp::Eq, value + 7),
    ];
    let table = if hold { op_holds } else { op_fails };
    let (op, constant) = table[rng.gen_range(0..table.len())];
    Literal::new(expr, op, Expr::constant(constant))
}

/// Generate a rule set of `config.count` rules over `graph`.
///
/// Every generated rule's pattern has at least one match in `graph` (the
/// sample it was built from), so the set exercises the detectors rather
/// than dying at candidate selection.  Rules whose pattern exceeds
/// `config.max_diameter` are rejected and re-sampled.
pub fn generate_rules(graph: &Graph, config: &RuleGenConfig) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rules = Vec::with_capacity(config.count);
    let mut attempts = 0usize;
    let max_attempts = config.count * 50 + 100;
    while rules.len() < config.count && attempts < max_attempts {
        attempts += 1;
        let size = rng.gen_range(config.min_nodes.max(2)..=config.max_nodes.max(2));
        let Some(sample) = sample_subgraph(graph, size, &mut rng) else {
            continue;
        };
        // Pattern construction.
        let mut pattern = Pattern::new();
        let vars: Vec<Var> = sample
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, &node)| {
                let name = format!("x{idx}");
                if rng.gen_bool(config.wildcard_prob.clamp(0.0, 1.0)) {
                    pattern.add_wildcard(&name)
                } else {
                    pattern.add_node(&name, ngd_graph::resolve(graph.label(node)))
                }
            })
            .collect();
        for &(src, dst, label) in &sample.edges {
            pattern.add_edge(vars[src], vars[dst], ngd_graph::resolve(label));
        }
        if pattern.diameter() > config.max_diameter {
            continue;
        }
        // Literal construction.
        let attrs = numeric_attrs(graph, &sample);
        if attrs.is_empty() {
            continue;
        }
        let literal_count = rng.gen_range(1..=config.max_literals.max(1));
        let mut premise = Vec::new();
        let mut consequence = Vec::new();
        for i in 0..literal_count {
            let expr = random_expr(&attrs, &vars, config.max_expr_terms, &mut rng);
            let Some(value) = eval_on_sample(&expr, graph, &sample.nodes) else {
                continue;
            };
            // The last literal always lands in the consequence so that the
            // dependency is never trivially `X → ∅`.
            let to_consequence = i + 1 == literal_count || rng.gen_bool(0.5);
            if to_consequence {
                let hold = !rng.gen_bool(config.violation_prob.clamp(0.0, 1.0));
                consequence.push(pivot_literal(expr, value, hold, &mut rng));
            } else {
                premise.push(pivot_literal(expr, value, true, &mut rng));
            }
        }
        if consequence.is_empty() {
            continue;
        }
        let id = format!("gen{}", rules.len());
        match Ngd::new(id, pattern, premise, consequence) {
            Ok(rule) => rules.push(rule),
            Err(_) => continue,
        }
    }
    RuleSet::from_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{generate_knowledge, KnowledgeConfig};
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use ngd_match::find_matches;

    fn sample_graph() -> Graph {
        generate_knowledge(&KnowledgeConfig::dbpedia_like(2)).graph
    }

    #[test]
    fn generates_the_requested_number_of_rules() {
        let graph = sample_graph();
        let sigma = generate_rules(&graph, &RuleGenConfig::paper_style(25, 4));
        assert_eq!(sigma.len(), 25);
    }

    #[test]
    fn every_generated_pattern_has_a_match_in_the_source_graph() {
        let graph = sample_graph();
        let sigma = generate_rules(&graph, &RuleGenConfig::paper_style(10, 4).with_seed(2));
        for rule in sigma.iter() {
            let matches = find_matches(&rule.pattern, &graph);
            assert!(
                !matches.is_empty(),
                "pattern of {} has no match in its source graph",
                rule.id
            );
        }
    }

    #[test]
    fn diameters_and_literal_counts_respect_the_config() {
        let graph = sample_graph();
        let config = RuleGenConfig {
            max_diameter: 3,
            max_literals: 2,
            ..RuleGenConfig::paper_style(15, 3)
        };
        let sigma = generate_rules(&graph, &config);
        assert!(sigma.diameter() <= 3);
        for rule in sigma.iter() {
            assert!(rule.literal_count() <= 2);
            assert!(rule.is_linear());
        }
    }

    #[test]
    fn violation_probability_one_makes_every_rule_violated() {
        // With violation_prob = 1 every consequence literal is constructed
        // to fail on the sampled match, so each rule has at least one
        // violation in the graph it was generated from — this is what the
        // experiment harness relies on to produce non-trivial workloads.
        let graph = sample_graph();
        let all = generate_rules(
            &graph,
            &RuleGenConfig::paper_style(10, 4)
                .with_violation_prob(1.0)
                .with_seed(3),
        );
        assert_eq!(all.len(), 10);
        for rule in all.iter() {
            assert!(
                !ngd_match::find_violations(rule, &graph).is_empty(),
                "rule {} should have at least its sampled violation",
                rule.id
            );
        }
    }

    #[test]
    fn rules_are_deterministic_per_seed() {
        let graph = sample_graph();
        let a = generate_rules(&graph, &RuleGenConfig::paper_style(8, 4).with_seed(9));
        let b = generate_rules(&graph, &RuleGenConfig::paper_style(8, 4).with_seed(9));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn works_on_synthetic_graphs_too() {
        let graph = generate_synthetic(&SyntheticConfig::paper_style(1_000, 3_000));
        let sigma = generate_rules(&graph, &RuleGenConfig::paper_style(12, 5));
        assert_eq!(sigma.len(), 12);
        // Patterns are mostly distinct (the paper reports ≥ 90 %).
        let mut shapes: Vec<String> = sigma.iter().map(|r| r.pattern.describe()).collect();
        shapes.sort();
        shapes.dedup();
        assert!(
            shapes.len() * 10 >= sigma.len() * 8,
            "too many duplicate patterns"
        );
    }
}
