//! Synthetic graph generator.
//!
//! The paper's synthetic datasets are controlled by the number of nodes
//! `|V|` and edges `|E|`, with labels drawn from an alphabet of 500 symbols
//! and attribute values from a set of 2 000 integers (Section 7,
//! "Experimental setting").  [`generate_synthetic`] reproduces exactly that
//! recipe: uniformly labelled nodes carrying a numeric `val` attribute,
//! and edges wired with a preferential-attachment bias so the degree
//! distribution is skewed like real graphs (which is what stresses the
//! parallel detector's work-splitting).

use crate::rng::StdRng;
use ngd_graph::{intern, AttrMap, Graph, NodeId, Value};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// Size of the node/edge label alphabet (500 in the paper).
    pub node_labels: usize,
    /// Number of distinct edge labels.
    pub edge_labels: usize,
    /// Attribute values are drawn from `0..value_range` (2 000 in the
    /// paper).
    pub value_range: i64,
    /// Fraction of edge endpoints chosen by preferential attachment rather
    /// than uniformly (0 = Erdős–Rényi-like, 1 = strongly hub-dominated).
    pub hub_bias: f64,
    /// RNG seed — the generator is fully deterministic given the config.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's synthetic recipe scaled to `nodes` nodes and `edges`
    /// edges (500 labels, 2 000 integer values).
    pub fn paper_style(nodes: usize, edges: usize) -> Self {
        SyntheticConfig {
            nodes,
            edges,
            node_labels: 500,
            edge_labels: 50,
            value_range: 2_000,
            hub_bias: 0.3,
            seed: 0xC0FFEE,
        }
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig::paper_style(10_000, 20_000)
    }
}

/// Generate a synthetic graph according to `config`.
///
/// Every node is labelled `L<k>` for `k < config.node_labels`, carries a
/// `val` attribute in `0..config.value_range`, and edges are labelled
/// `e<k>`.  Self-loops are allowed (homomorphic matching permits them);
/// exact duplicate edges are skipped, so the edge count can fall slightly
/// short of the requested number on very dense configurations.
pub fn generate_synthetic(config: &SyntheticConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = Graph::with_capacity(config.nodes);
    for _ in 0..config.nodes {
        let label = intern(&format!("L{}", rng.gen_range(0..config.node_labels.max(1))));
        let mut attrs = AttrMap::new();
        attrs.set_named(
            "val",
            Value::Int(rng.gen_range(0..config.value_range.max(1))),
        );
        graph.add_node(label, attrs);
    }
    if config.nodes == 0 {
        return graph;
    }
    // Preferential attachment pool: node ids repeated once per incident
    // edge, so hubs keep attracting edges.
    let mut pool: Vec<NodeId> = Vec::with_capacity(config.edges);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = config.edges.saturating_mul(10).max(100);
    while added < config.edges && attempts < max_attempts {
        attempts += 1;
        let src = NodeId(rng.gen_range(0..config.nodes) as u32);
        let dst = if !pool.is_empty() && rng.gen_bool(config.hub_bias.clamp(0.0, 1.0)) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..config.nodes) as u32)
        };
        let label = intern(&format!("e{}", rng.gen_range(0..config.edge_labels.max(1))));
        if graph.add_edge(src, dst, label).is_ok() {
            pool.push(src);
            pool.push(dst);
            added += 1;
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngd_graph::GraphStats;

    #[test]
    fn respects_node_and_edge_counts() {
        let config = SyntheticConfig::paper_style(2_000, 6_000);
        let g = generate_synthetic(&config);
        assert_eq!(g.node_count(), 2_000);
        // Duplicate skipping can shave a few edges off, never add any.
        assert!(g.edge_count() <= 6_000);
        assert!(
            g.edge_count() > 5_500,
            "edge count {} too low",
            g.edge_count()
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let config = SyntheticConfig::paper_style(500, 1_500).with_seed(7);
        let a = generate_synthetic(&config);
        let b = generate_synthetic(&config);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_vec(), b.edge_vec());
        // A different seed produces a different wiring.
        let c = generate_synthetic(&config.with_seed(8));
        assert_ne!(a.edge_vec(), c.edge_vec());
    }

    #[test]
    fn labels_and_values_stay_in_range() {
        let config = SyntheticConfig {
            nodes: 300,
            edges: 900,
            node_labels: 10,
            edge_labels: 3,
            value_range: 50,
            hub_bias: 0.5,
            seed: 3,
        };
        let g = generate_synthetic(&config);
        let stats = GraphStats::compute(&g);
        assert!(stats.node_label_count <= 10);
        assert!(stats.edge_label_count <= 3);
        for v in g.node_ids() {
            let val = g.attr(v, intern("val")).and_then(|x| x.as_int()).unwrap();
            assert!((0..50).contains(&val));
        }
    }

    #[test]
    fn hub_bias_skews_the_degree_distribution() {
        let uniform = generate_synthetic(&SyntheticConfig {
            hub_bias: 0.0,
            ..SyntheticConfig::paper_style(2_000, 8_000)
        });
        let hubby = generate_synthetic(&SyntheticConfig {
            hub_bias: 0.9,
            ..SyntheticConfig::paper_style(2_000, 8_000)
        });
        let max_uniform = GraphStats::compute(&uniform).max_degree;
        let max_hubby = GraphStats::compute(&hubby).max_degree;
        assert!(
            max_hubby > max_uniform,
            "preferential attachment should create hubs ({max_hubby} vs {max_uniform})"
        );
    }

    #[test]
    fn degenerate_configurations_do_not_panic() {
        let empty = generate_synthetic(&SyntheticConfig {
            nodes: 0,
            edges: 10,
            ..SyntheticConfig::default()
        });
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.edge_count(), 0);
        let single = generate_synthetic(&SyntheticConfig {
            nodes: 1,
            edges: 5,
            node_labels: 1,
            edge_labels: 1,
            value_range: 1,
            hub_bias: 0.0,
            seed: 0,
        });
        assert_eq!(single.node_count(), 1);
        // Only a bounded number of distinct self-loop labels exist.
        assert!(single.edge_count() <= 1);
    }
}
