//! Batch-update generator.
//!
//! The experiments vary the update size `|ΔG|` (as a fraction of `|E|`) and
//! the insert/delete ratio `γ` (Section 7, "ΔG").  [`generate_update`]
//! reproduces that: deletions are sampled uniformly from the existing
//! edges, and insertions re-wire sampled edges to a different
//! same-labelled endpoint, so that inserted edges are label-compatible
//! with the graph's schema (and therefore actually trigger update pivots,
//! as real-world insertions would).

use crate::rng::StdRng;
use ngd_graph::{BatchUpdate, EdgeRef, Graph, NodeId};
use std::collections::HashSet;

/// Configuration of the update generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateConfig {
    /// Size of the batch update as a fraction of `|E|` (`0.05` = 5 %).
    pub fraction: f64,
    /// Ratio γ of edge insertions to deletions (1.0 keeps `|G|` unchanged).
    pub gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UpdateConfig {
    /// An update of the given fraction with γ = 1 (the paper's default).
    pub fn fraction(fraction: f64) -> Self {
        UpdateConfig {
            fraction,
            gamma: 1.0,
            seed: 0xDE17A,
        }
    }

    /// Builder-style setter for γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate a batch update over `graph` according to `config`.
///
/// The update never deletes the same edge twice and never inserts an edge
/// that already exists, so it applies cleanly with
/// [`BatchUpdate::applied_to`].
pub fn generate_update(graph: &Graph, config: &UpdateConfig) -> BatchUpdate {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut update = BatchUpdate::new();
    let edges: Vec<EdgeRef> = graph.edge_vec();
    if edges.is_empty() {
        return update;
    }
    let total = ((edges.len() as f64) * config.fraction.max(0.0)).round() as usize;
    if total == 0 {
        return update;
    }
    let gamma = config.gamma.max(0.0);
    // total = inserts + deletes, inserts = γ · deletes.
    let deletes = ((total as f64) / (1.0 + gamma)).round() as usize;
    let inserts = total.saturating_sub(deletes);

    // Deletions: sample distinct existing edges.
    let mut deleted: HashSet<EdgeRef> = HashSet::new();
    let mut attempts = 0usize;
    while deleted.len() < deletes.min(edges.len()) && attempts < edges.len() * 10 {
        attempts += 1;
        let e = edges[rng.gen_range(0..edges.len())];
        if deleted.insert(e) {
            update.delete_edge(e.src, e.dst, e.label);
        }
    }

    // Insertions: re-wire a sampled edge `(src → dst)` to another node with
    // the same label as `dst`, keeping the edge label.
    let mut inserted: HashSet<EdgeRef> = HashSet::new();
    attempts = 0;
    while inserted.len() < inserts && attempts < inserts * 20 + 100 {
        attempts += 1;
        let template = edges[rng.gen_range(0..edges.len())];
        let dst_label = graph.label(template.dst);
        let candidates = graph.nodes_with_label(dst_label);
        if candidates.is_empty() {
            continue;
        }
        let new_dst: NodeId = candidates[rng.gen_range(0..candidates.len())];
        let e = EdgeRef::new(template.src, new_dst, template.label);
        if graph.has_edge(e.src, e.dst, e.label) || deleted.contains(&e) || !inserted.insert(e) {
            continue;
        }
        update.insert_edge(e.src, e.dst, e.label);
    }
    update
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{generate_knowledge, KnowledgeConfig};

    fn sample_graph() -> Graph {
        generate_knowledge(&KnowledgeConfig::dbpedia_like(2)).graph
    }

    #[test]
    fn update_size_tracks_the_requested_fraction() {
        let graph = sample_graph();
        for fraction in [0.05, 0.15, 0.30] {
            let update = generate_update(&graph, &UpdateConfig::fraction(fraction));
            let expected = (graph.edge_count() as f64 * fraction).round() as usize;
            let len = update.len();
            assert!(
                (len as i64 - expected as i64).unsigned_abs() as usize <= expected / 5 + 2,
                "|ΔG| = {len}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn gamma_controls_the_insert_delete_ratio() {
        let graph = sample_graph();
        let balanced = generate_update(&graph, &UpdateConfig::fraction(0.2).with_gamma(1.0));
        let ins = balanced.insertions().count();
        let del = balanced.deletions().count();
        assert!(
            (ins as i64 - del as i64).abs() <= 2,
            "γ=1 must balance ({ins} vs {del})"
        );

        let insert_heavy = generate_update(&graph, &UpdateConfig::fraction(0.2).with_gamma(3.0));
        assert!(insert_heavy.insertions().count() > 2 * insert_heavy.deletions().count());

        let delete_only = generate_update(&graph, &UpdateConfig::fraction(0.2).with_gamma(0.0));
        assert_eq!(delete_only.insertions().count(), 0);
        assert!(delete_only.deletions().count() > 0);
    }

    #[test]
    fn update_applies_cleanly() {
        let graph = sample_graph();
        let update = generate_update(&graph, &UpdateConfig::fraction(0.25));
        let updated = update
            .applied_to(&graph)
            .expect("generated update must apply");
        // γ = 1: the edge count stays roughly unchanged.
        let diff = (updated.edge_count() as i64 - graph.edge_count() as i64).abs();
        assert!(diff <= 2, "edge count drifted by {diff}");
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let graph = sample_graph();
        let a = generate_update(&graph, &UpdateConfig::fraction(0.1).with_seed(5));
        let b = generate_update(&graph, &UpdateConfig::fraction(0.1).with_seed(5));
        let c = generate_update(&graph, &UpdateConfig::fraction(0.1).with_seed(6));
        let key = |u: &BatchUpdate| {
            (
                u.insertions().collect::<Vec<_>>(),
                u.deletions().collect::<Vec<_>>(),
            )
        };
        assert_eq!(key(&a), key(&b));
        assert_ne!(key(&a), key(&c));
    }

    #[test]
    fn empty_graph_or_zero_fraction_yields_empty_update() {
        let graph = sample_graph();
        assert!(generate_update(&graph, &UpdateConfig::fraction(0.0)).is_empty());
        assert!(generate_update(&Graph::new(), &UpdateConfig::fraction(0.5)).is_empty());
    }
}
