//! Generated datasets with ground-truth error seeding.
//!
//! The real graphs the paper evaluates on (DBpedia, YAGO2, Pokec) are not
//! available offline, so the generators in this crate simulate them.  To
//! make the effectiveness experiment (Exp-5) reproducible, every generator
//! records exactly *which* entities it seeded with an inconsistency and for
//! *which* rule, so tests and experiments can check that detection finds
//! all of them (and nothing in an error-free generation).

use ngd_graph::{Graph, GraphStats, NodeId};
use std::collections::BTreeMap;

/// A generated graph plus the ground truth of seeded inconsistencies.
#[derive(Debug, Clone, Default)]
pub struct GeneratedGraph {
    /// The generated data graph.
    pub graph: Graph,
    /// For every rule id, the entity nodes that were deliberately made
    /// inconsistent with respect to that rule.
    pub seeded: BTreeMap<String, Vec<NodeId>>,
}

impl GeneratedGraph {
    /// Record that `node` was seeded with an error against `rule_id`.
    pub fn record_seed(&mut self, rule_id: &str, node: NodeId) {
        self.seeded
            .entry(rule_id.to_string())
            .or_default()
            .push(node);
    }

    /// Total number of seeded error entities across all rules.
    pub fn seeded_count(&self) -> usize {
        self.seeded.values().map(Vec::len).sum()
    }

    /// Seeded error entities for one rule (empty slice if none).
    pub fn seeded_for(&self, rule_id: &str) -> &[NodeId] {
        self.seeded.get(rule_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary statistics of the generated graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_bookkeeping() {
        let mut g = GeneratedGraph::default();
        assert_eq!(g.seeded_count(), 0);
        g.record_seed("phi1", NodeId(3));
        g.record_seed("phi1", NodeId(9));
        g.record_seed("phi2", NodeId(4));
        assert_eq!(g.seeded_count(), 3);
        assert_eq!(g.seeded_for("phi1"), &[NodeId(3), NodeId(9)]);
        assert!(g.seeded_for("phi9").is_empty());
    }
}
