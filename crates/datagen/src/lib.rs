//! # ngd-datagen
//!
//! Dataset simulators, update generators and rule generators for the NGD
//! reproduction.
//!
//! The paper evaluates on DBpedia, YAGO2, Pokec and synthetic graphs, with
//! 100 mined NGDs per dataset and randomly generated batch updates
//! (Section 7).  None of the real dumps is available offline, so this crate
//! provides simulators that reproduce the schema fragments the paper's
//! rules touch and the structural statistics the experiments depend on
//! (label diversity, density, skewed degrees), plus controlled error
//! seeding so the effectiveness study has a ground truth:
//!
//! * [`knowledge`] — DBpedia-like and YAGO2-like knowledge graphs
//!   (institutions/dates, villages/populations, places/ranks, persons,
//!   Olympic competitions, Formula-One teams);
//! * [`social`] — Pokec-like profiles plus the Twitter company/account
//!   structure of Figure 1 G4 (fake-account seeding);
//! * [`synthetic`] — the paper's synthetic recipe (|V|, |E|, 500 labels,
//!   2 000 integer values);
//! * [`rules`] — "discovery-lite" rule-set generation with controlled
//!   pattern diameter, literal count and expression length;
//! * [`updates`] — batch updates of a given size `|ΔG|` and insert/delete
//!   ratio γ;
//! * [`dataset`] — the [`GeneratedGraph`] wrapper carrying the seeded-error
//!   ground truth.
//!
//! Everything is deterministic given the configuration (seeds included), so
//! experiments and tests are reproducible.

pub mod dataset;
pub mod knowledge;
pub mod rng;
pub mod rules;
pub mod social;
pub mod synthetic;
pub mod updates;

pub use dataset::GeneratedGraph;
pub use knowledge::{generate_knowledge, KnowledgeConfig};
pub use rng::StdRng;
pub use rules::{generate_rules, RuleGenConfig};
pub use social::{generate_social, SocialConfig};
pub use synthetic::{generate_synthetic, SyntheticConfig};
pub use updates::{generate_update, UpdateConfig};
