//! Knowledge-base simulators (DBpedia-like and YAGO2-like).
//!
//! The generators reproduce the schema fragments the paper's rules touch:
//!
//! * **institutions** with `wasCreatedOnDate` / `wasDestroyedOnDate` edges
//!   to date nodes (φ1, Figure 1 G1);
//! * **areas** (villages) with `femalePopulation` / `malePopulation` /
//!   `populationTotal` edges to integer nodes (φ2, Figure 1 G2);
//! * **places** grouped into regions via `partOf`, each with `population`
//!   and `populationRank` integer nodes tied to a per-region census date
//!   (φ3, Figure 1 G3);
//! * **persons** with `birthYear` and `category` (NGD1 of Exp-5);
//! * **competitions** with `competitors` / `nations` counts and an
//!   `includes` edge to an event (NGD2);
//! * **teams** and **drivers** with `numberOfWins` attributes and shared
//!   `year` nodes (NGD3).
//!
//! A configurable fraction of entities in every family is seeded with an
//! inconsistency; the returned [`GeneratedGraph`] records exactly which
//! ones, so the effectiveness study (Exp-5) can be validated against the
//! ground truth.  Detection never reads the ground truth — only the graph.

use crate::dataset::GeneratedGraph;
use crate::rng::StdRng;
use ngd_graph::{AttrMap, Value};

/// Configuration of the knowledge-base simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnowledgeConfig {
    /// Number of regions (states); each region groups `places_per_region`
    /// places under a shared census.
    pub regions: usize,
    /// Places per region.
    pub places_per_region: usize,
    /// Villages with female/male/total population triples.
    pub areas: usize,
    /// Institutions with creation/destruction dates.
    pub institutions: usize,
    /// Persons with birth year and category.
    pub persons: usize,
    /// Competitions (half of them Olympic).
    pub competitions: usize,
    /// Formula-One teams, two drivers each.
    pub teams: usize,
    /// Number of rule-irrelevant `linksTo` edges between entities.  Real
    /// knowledge bases carry hundreds of edge types of which the data
    /// quality rules touch a handful (DBpedia has 160 edge types); these
    /// filler links reproduce that ratio, which is what makes incremental
    /// detection pay off — most updated edges trigger no pivot at all.
    pub filler_links: usize,
    /// Fraction of entities per family seeded with an inconsistency.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KnowledgeConfig {
    /// A DBpedia-like mix (all entity families present), scaled by `scale`.
    ///
    /// `scale = 1` produces a graph of a few hundred nodes; the experiment
    /// harness uses scales in the hundreds to thousands.
    pub fn dbpedia_like(scale: usize) -> Self {
        let s = scale.max(1);
        KnowledgeConfig {
            regions: 2 * s,
            places_per_region: 8,
            areas: 10 * s,
            institutions: 10 * s,
            persons: 20 * s,
            competitions: 5 * s,
            teams: 5 * s,
            filler_links: 400 * s,
            error_rate: 0.05,
            seed: 0xD8BED1A,
        }
    }

    /// A YAGO2-like mix: mostly institutions with dates and villages with
    /// population splits (the two Yago examples of the paper), fewer of the
    /// DBpedia-specific families.
    pub fn yago_like(scale: usize) -> Self {
        let s = scale.max(1);
        KnowledgeConfig {
            regions: s,
            places_per_region: 5,
            areas: 25 * s,
            institutions: 25 * s,
            persons: 10 * s,
            competitions: 0,
            teams: 0,
            filler_links: 300 * s,
            error_rate: 0.05,
            seed: 0x9A60,
        }
    }

    /// Builder-style setter for the error rate.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for KnowledgeConfig {
    fn default() -> Self {
        KnowledgeConfig::dbpedia_like(4)
    }
}

fn int_attrs(value: i64) -> AttrMap {
    AttrMap::from_pairs([("val", Value::Int(value))])
}

/// Generate a knowledge-base graph according to `config`.
pub fn generate_knowledge(config: &KnowledgeConfig) -> GeneratedGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = GeneratedGraph::default();
    let seed_error = |rng: &mut StdRng| rng.gen_bool(config.error_rate.clamp(0.0, 1.0));

    generate_institutions(config, &mut rng, &mut out, seed_error);
    generate_areas(config, &mut rng, &mut out, seed_error);
    generate_regions(config, &mut rng, &mut out);
    generate_persons(config, &mut rng, &mut out, seed_error);
    generate_competitions(config, &mut rng, &mut out, seed_error);
    generate_teams(config, &mut rng, &mut out, seed_error);
    generate_filler_links(config, &mut rng, &mut out);
    out
}

/// Rule-irrelevant `linksTo` edges between entity nodes (the bulk of a real
/// knowledge base).  Only entity-labelled nodes are linked, so the filler
/// never changes the truth value of any paper rule.
fn generate_filler_links(config: &KnowledgeConfig, rng: &mut StdRng, out: &mut GeneratedGraph) {
    let entities: Vec<_> = [
        "institution",
        "area",
        "place",
        "person",
        "competition",
        "team",
    ]
    .iter()
    .flat_map(|label| {
        out.graph
            .nodes_with_label(ngd_graph::intern(label))
            .to_vec()
    })
    .collect();
    if entities.len() < 2 {
        return;
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < config.filler_links && attempts < config.filler_links * 10 {
        attempts += 1;
        let src = entities[rng.gen_range(0..entities.len())];
        let dst = entities[rng.gen_range(0..entities.len())];
        if src == dst {
            continue;
        }
        if out.graph.add_edge_named(src, dst, "linksTo").is_ok() {
            added += 1;
        }
    }
}

/// Institutions: created on a random date, destroyed some years later —
/// unless seeded, in which case the destruction predates the creation (the
/// BBC-Trust error of Figure 1).  Violates φ1.
fn generate_institutions(
    config: &KnowledgeConfig,
    rng: &mut StdRng,
    out: &mut GeneratedGraph,
    mut seed_error: impl FnMut(&mut StdRng) -> bool,
) {
    for _ in 0..config.institutions {
        let inst = out.graph.add_node_named("institution", AttrMap::new());
        let created_year = rng.gen_range(1900..2010);
        let lifetime_years = rng.gen_range(1..80);
        let bad = seed_error(rng);
        let destroyed_year = if bad {
            created_year - rng.gen_range(1..50)
        } else {
            created_year + lifetime_years
        };
        let created = out.graph.add_node_named(
            "date",
            AttrMap::from_pairs([("val", Value::from_date(created_year, 1, 1))]),
        );
        let destroyed = out.graph.add_node_named(
            "date",
            AttrMap::from_pairs([("val", Value::from_date(destroyed_year, 6, 15))]),
        );
        out.graph
            .add_edge_named(inst, created, "wasCreatedOnDate")
            .unwrap();
        out.graph
            .add_edge_named(inst, destroyed, "wasDestroyedOnDate")
            .unwrap();
        if bad {
            out.record_seed("phi1", inst);
        }
    }
}

/// Areas (villages): female + male = total, unless seeded (the Bhonpur
/// error).  Violates φ2.
fn generate_areas(
    config: &KnowledgeConfig,
    rng: &mut StdRng,
    out: &mut GeneratedGraph,
    mut seed_error: impl FnMut(&mut StdRng) -> bool,
) {
    for _ in 0..config.areas {
        let area = out.graph.add_node_named("area", AttrMap::new());
        let female = rng.gen_range(100..5_000);
        let male = rng.gen_range(100..5_000);
        let bad = seed_error(rng);
        let total = if bad {
            female + male + rng.gen_range(1..500)
        } else {
            female + male
        };
        let f = out.graph.add_node_named("integer", int_attrs(female));
        let m = out.graph.add_node_named("integer", int_attrs(male));
        let t = out.graph.add_node_named("integer", int_attrs(total));
        out.graph
            .add_edge_named(area, f, "femalePopulation")
            .unwrap();
        out.graph.add_edge_named(area, m, "malePopulation").unwrap();
        out.graph
            .add_edge_named(area, t, "populationTotal")
            .unwrap();
        if bad {
            out.record_seed("phi2", area);
        }
    }
}

/// Regions of places with populations and ranks tied to a shared census.
/// Ranks are consistent with populations (rank 1 = most populous) unless a
/// region is seeded, in which case one adjacent pair of ranks is swapped —
/// exactly the Corona/Downey error of Figure 1.  Violates φ3.
fn generate_regions(config: &KnowledgeConfig, rng: &mut StdRng, out: &mut GeneratedGraph) {
    for _ in 0..config.regions {
        let region = out.graph.add_node_named("place", AttrMap::new());
        let census = out.graph.add_node_named(
            "date",
            AttrMap::from_pairs([("val", Value::from_date(2014, 4, 1))]),
        );
        let count = config.places_per_region.max(2);
        // Distinct populations, descending so that index = rank − 1.
        let mut populations: Vec<i64> = (0..count)
            .map(|_| rng.gen_range(10_000..1_000_000))
            .collect();
        populations.sort_unstable_by(|a, b| b.cmp(a));
        populations.dedup();
        while populations.len() < count {
            populations.push(populations.last().copied().unwrap_or(10_000) - 1);
        }
        let mut ranks: Vec<i64> = (1..=count as i64).collect();
        let bad = rng.gen_bool(config.error_rate.clamp(0.0, 1.0)) && count >= 2;
        let swapped_at = if bad {
            let i = rng.gen_range(0..count - 1);
            ranks.swap(i, i + 1);
            Some(i)
        } else {
            None
        };
        for (idx, (&population, &rank)) in populations.iter().zip(ranks.iter()).enumerate() {
            let place = out.graph.add_node_named("place", AttrMap::new());
            let pop = out.graph.add_node_named("integer", int_attrs(population));
            let rk = out.graph.add_node_named("integer", int_attrs(rank));
            out.graph.add_edge_named(place, region, "partOf").unwrap();
            out.graph.add_edge_named(place, pop, "population").unwrap();
            out.graph
                .add_edge_named(place, rk, "populationRank")
                .unwrap();
            out.graph.add_edge_named(pop, census, "date").unwrap();
            if idx >= 1 && swapped_at == Some(idx - 1) {
                // The less-populous place of the swapped pair (index i+1 of
                // the swap) is the `x` of the violating φ3 match: it has the
                // smaller population but the numerically smaller rank.
                out.record_seed("phi3", place);
            }
        }
    }
}

/// Persons with a birth year and a category string.  Seeded persons are
/// born before 1800 yet categorised as "living people" (NGD1).
fn generate_persons(
    config: &KnowledgeConfig,
    rng: &mut StdRng,
    out: &mut GeneratedGraph,
    mut seed_error: impl FnMut(&mut StdRng) -> bool,
) {
    for _ in 0..config.persons {
        let person = out.graph.add_node_named("person", AttrMap::new());
        let bad = seed_error(rng);
        let (birth_year, category) = if bad {
            (rng.gen_range(1500..1800), "living people")
        } else if rng.gen_bool(0.5) {
            (rng.gen_range(1930..2005), "living people")
        } else {
            (rng.gen_range(1500..1900), "deceased")
        };
        let year = out.graph.add_node_named("integer", int_attrs(birth_year));
        let cat = out.graph.add_node_named(
            "string",
            AttrMap::from_pairs([("val", Value::Str(category.to_string()))]),
        );
        out.graph.add_edge_named(person, year, "birthYear").unwrap();
        out.graph.add_edge_named(person, cat, "category").unwrap();
        if bad {
            out.record_seed("ngd1", person);
        }
    }
}

/// Competitions with competitor and nation counts; half of them belong to
/// an Olympic event.  Seeded Olympic competitions report more nations than
/// competitors (NGD2).
fn generate_competitions(
    config: &KnowledgeConfig,
    rng: &mut StdRng,
    out: &mut GeneratedGraph,
    mut seed_error: impl FnMut(&mut StdRng) -> bool,
) {
    for i in 0..config.competitions {
        let comp = out.graph.add_node_named("competition", AttrMap::new());
        let olympic = i % 2 == 0;
        let event = out.graph.add_node_named(
            "event",
            AttrMap::from_pairs([(
                "type",
                Value::Str(if olympic { "Olympic" } else { "Regional" }.to_string()),
            )]),
        );
        let competitors = rng.gen_range(10..500);
        let bad = olympic && seed_error(rng);
        let nations = if bad {
            competitors + rng.gen_range(1..20)
        } else {
            rng.gen_range(1..=competitors)
        };
        let y = out.graph.add_node_named("integer", int_attrs(competitors));
        let z = out.graph.add_node_named("integer", int_attrs(nations));
        out.graph.add_edge_named(comp, event, "includes").unwrap();
        out.graph.add_edge_named(comp, y, "competitors").unwrap();
        out.graph.add_edge_named(comp, z, "nations").unwrap();
        if bad {
            out.record_seed("ngd2", comp);
        }
    }
}

/// Formula-One teams with two drivers each, all sharing a season (year)
/// node.  Seeded teams have fewer wins than their two drivers combined
/// (NGD3 — the Vettel/Verstappen error of Exp-5).
fn generate_teams(
    config: &KnowledgeConfig,
    rng: &mut StdRng,
    out: &mut GeneratedGraph,
    mut seed_error: impl FnMut(&mut StdRng) -> bool,
) {
    for i in 0..config.teams {
        let season = 2000 + (i as i64 % 20);
        let year = out.graph.add_node_named("year", int_attrs(season));
        let wins1: i64 = rng.gen_range(1..5);
        let wins2: i64 = rng.gen_range(1..5);
        let bad = seed_error(rng);
        let team_wins = if bad {
            // Strictly fewer wins than the two drivers combined.
            rng.gen_range(0..wins1 + wins2)
        } else {
            wins1 + wins2 + rng.gen_range(0..3)
        };
        let team = out.graph.add_node_named(
            "team",
            AttrMap::from_pairs([("numberOfWins", Value::Int(team_wins))]),
        );
        let d1 = out.graph.add_node_named(
            "driver",
            AttrMap::from_pairs([("numberOfWins", Value::Int(wins1))]),
        );
        let d2 = out.graph.add_node_named(
            "driver",
            AttrMap::from_pairs([("numberOfWins", Value::Int(wins2))]),
        );
        out.graph.add_edge_named(d1, team, "team").unwrap();
        out.graph.add_edge_named(d2, team, "team").unwrap();
        out.graph.add_edge_named(team, year, "year").unwrap();
        out.graph.add_edge_named(d1, year, "year").unwrap();
        out.graph.add_edge_named(d2, year, "year").unwrap();
        if bad {
            out.record_seed("ngd3", team);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngd_graph::intern;

    #[test]
    fn error_free_generation_has_no_seeds() {
        let config = KnowledgeConfig::dbpedia_like(2).with_error_rate(0.0);
        let generated = generate_knowledge(&config);
        assert_eq!(generated.seeded_count(), 0);
        assert!(generated.graph.node_count() > 100);
    }

    #[test]
    fn seeding_rate_controls_error_volume() {
        let none = generate_knowledge(&KnowledgeConfig::dbpedia_like(4).with_error_rate(0.0));
        let some = generate_knowledge(&KnowledgeConfig::dbpedia_like(4).with_error_rate(0.2));
        let all = generate_knowledge(&KnowledgeConfig::dbpedia_like(4).with_error_rate(1.0));
        assert_eq!(none.seeded_count(), 0);
        assert!(some.seeded_count() > 0);
        assert!(all.seeded_count() > some.seeded_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = KnowledgeConfig::dbpedia_like(2).with_seed(11);
        let a = generate_knowledge(&config);
        let b = generate_knowledge(&config);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
        assert_eq!(a.seeded, b.seeded);
    }

    #[test]
    fn yago_like_omits_dbpedia_specific_families() {
        let generated = generate_knowledge(&KnowledgeConfig::yago_like(2));
        assert!(generated
            .graph
            .nodes_with_label(intern("competition"))
            .is_empty());
        assert!(generated.graph.nodes_with_label(intern("team")).is_empty());
        assert!(!generated
            .graph
            .nodes_with_label(intern("institution"))
            .is_empty());
        assert!(!generated.graph.nodes_with_label(intern("area")).is_empty());
    }

    #[test]
    fn schema_families_are_present_in_dbpedia_like() {
        let generated = generate_knowledge(&KnowledgeConfig::dbpedia_like(1));
        for label in [
            "institution",
            "area",
            "place",
            "person",
            "competition",
            "team",
            "driver",
        ] {
            assert!(
                !generated.graph.nodes_with_label(intern(label)).is_empty(),
                "missing label {label}"
            );
        }
    }

    #[test]
    fn knowledge_graphs_are_sparse_like_the_paper_datasets() {
        // The paper reports densities around 6×10⁻⁷ for DBpedia/YAGO2; the
        // simulation is ~1000× smaller so its density is correspondingly
        // higher, but the graph must stay sparse (low average degree) for
        // the locality arguments to carry over.
        let generated = generate_knowledge(&KnowledgeConfig::dbpedia_like(8));
        let stats = generated.stats();
        assert!(stats.density < 1e-2, "density {} too high", stats.density);
        assert!(stats.avg_degree < 20.0, "avg degree {}", stats.avg_degree);
    }
}
