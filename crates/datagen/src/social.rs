//! Social-network simulator (Pokec-like profiles + the Twitter
//! company/account structure of Figure 1 G4).
//!
//! The generator produces two intertwined families:
//!
//! * **companies and accounts** — every company has one verified account
//!   with many followers and a handful of smaller accounts; a configurable
//!   fraction of the small accounts is *fake*: flagged as real
//!   (`status = 1`) despite a huge follower/following deficit against the
//!   verified account.  These are exactly the violations of φ4.
//! * **profiles** — plain user profiles connected by `follows` edges with a
//!   skewed degree distribution, providing the bulk of nodes/edges and the
//!   density the paper reports for Pokec (10–20× denser than the knowledge
//!   graphs).  Profiles carry an `age` attribute and a `registered` year so
//!   that generated rules (see [`crate::rules`]) have numeric material to
//!   work with.

use crate::dataset::GeneratedGraph;
use crate::rng::StdRng;
use ngd_graph::{AttrMap, NodeId, Value};

/// Configuration of the social-network simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialConfig {
    /// Number of companies.
    pub companies: usize,
    /// Accounts per company (including the verified one).
    pub accounts_per_company: usize,
    /// Fraction of non-verified accounts that are fake (seeded φ4 errors).
    pub fake_rate: f64,
    /// Number of plain user profiles.
    pub profiles: usize,
    /// Average number of `follows` edges per profile.
    pub avg_follows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// A Pokec-like mix scaled by `scale`: mostly profiles and `follows`
    /// edges, with a corporate account layer on top.
    pub fn pokec_like(scale: usize) -> Self {
        let s = scale.max(1);
        SocialConfig {
            companies: 3 * s,
            accounts_per_company: 6,
            fake_rate: 0.1,
            profiles: 150 * s,
            avg_follows: 10,
            seed: 0x50CEC,
        }
    }

    /// Builder-style setter for the fake-account rate.
    pub fn with_fake_rate(mut self, rate: f64) -> Self {
        self.fake_rate = rate;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig::pokec_like(4)
    }
}

fn int_node(out: &mut GeneratedGraph, value: i64) -> NodeId {
    out.graph
        .add_node_named("integer", AttrMap::from_pairs([("val", Value::Int(value))]))
}

/// Attach an account to a company with the given follower/following counts
/// and status flag, returning the account node.
fn add_account(
    out: &mut GeneratedGraph,
    company: NodeId,
    following: i64,
    follower: i64,
    real: bool,
) -> NodeId {
    let account = out.graph.add_node_named("account", AttrMap::new());
    let m = int_node(out, following);
    let n = int_node(out, follower);
    let status = out
        .graph
        .add_node_named("boolean", AttrMap::from_pairs([("val", Value::Bool(real))]));
    out.graph.add_edge_named(account, company, "keys").unwrap();
    out.graph.add_edge_named(account, m, "following").unwrap();
    out.graph.add_edge_named(account, n, "follower").unwrap();
    out.graph.add_edge_named(account, status, "status").unwrap();
    account
}

/// Generate a social graph according to `config`.
///
/// Seeded φ4 errors are recorded under rule id `"phi4"`; the recorded node
/// is the *fake* account (the `y` of the violating match).
pub fn generate_social(config: &SocialConfig) -> GeneratedGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = GeneratedGraph::default();

    // Corporate layer: companies with one verified account plus satellites.
    for _ in 0..config.companies {
        let company = out.graph.add_node_named("company", AttrMap::new());
        let verified_following = rng.gen_range(5_000..50_000);
        let verified_follower = rng.gen_range(50_000..500_000);
        add_account(
            &mut out,
            company,
            verified_following,
            verified_follower,
            true,
        );
        for _ in 1..config.accounts_per_company.max(1) {
            let fake = rng.gen_bool(config.fake_rate.clamp(0.0, 1.0));
            if fake {
                // Tiny account that still claims to be real: the φ4 error.
                let account = add_account(
                    &mut out,
                    company,
                    rng.gen_range(0..10),
                    rng.gen_range(0..10),
                    true,
                );
                out.record_seed("phi4", account);
            } else if rng.gen_bool(0.5) {
                // Small but honestly flagged as not-verified.
                add_account(
                    &mut out,
                    company,
                    rng.gen_range(0..100),
                    rng.gen_range(0..100),
                    false,
                );
            } else {
                // A sizeable regional account, close enough to the verified
                // one that the follower gap stays under any sane threshold.
                add_account(
                    &mut out,
                    company,
                    verified_following - rng.gen_range(0..1_000),
                    verified_follower - rng.gen_range(0..1_000),
                    true,
                );
            }
        }
    }

    // Profile layer: `follows` edges with preferential attachment.
    let first_profile = out.graph.node_count();
    for _ in 0..config.profiles {
        let age = rng.gen_range(14..80);
        let registered = rng.gen_range(2005..2018);
        out.graph.add_node_named(
            "profile",
            AttrMap::from_pairs([
                ("age", Value::Int(age)),
                ("registered", Value::Int(registered)),
            ]),
        );
    }
    if config.profiles > 1 {
        let mut pool: Vec<usize> = Vec::new();
        let target_edges = config.profiles * config.avg_follows;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < target_edges && attempts < target_edges * 10 {
            attempts += 1;
            let src = first_profile + rng.gen_range(0..config.profiles);
            let dst = if !pool.is_empty() && rng.gen_bool(0.4) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                first_profile + rng.gen_range(0..config.profiles)
            };
            if src == dst {
                continue;
            }
            let (src, dst) = (NodeId(src as u32), NodeId(dst as u32));
            if out.graph.add_edge_named(src, dst, "follows").is_ok() {
                pool.push(dst.index());
                added += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngd_graph::intern;

    #[test]
    fn fake_accounts_are_seeded_and_recorded() {
        let generated = generate_social(&SocialConfig::pokec_like(2).with_fake_rate(0.5));
        assert!(!generated.seeded_for("phi4").is_empty());
        // Every seeded node really is an account with status = true.
        for &account in generated.seeded_for("phi4") {
            assert_eq!(generated.graph.label(account), intern("account"));
        }
    }

    #[test]
    fn zero_fake_rate_seeds_nothing() {
        let generated = generate_social(&SocialConfig::pokec_like(2).with_fake_rate(0.0));
        assert_eq!(generated.seeded_count(), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = SocialConfig::pokec_like(1).with_seed(99);
        let a = generate_social(&config);
        let b = generate_social(&config);
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
        assert_eq!(a.seeded, b.seeded);
    }

    #[test]
    fn profile_layer_dominates_and_is_denser_than_knowledge_graphs() {
        let generated = generate_social(&SocialConfig::pokec_like(4));
        let stats = generated.stats();
        let profiles = generated.graph.nodes_with_label(intern("profile")).len();
        assert!(
            profiles * 2 > stats.nodes,
            "profiles must dominate the node count"
        );
        // Pokec is an order of magnitude denser than DBpedia/YAGO2; the
        // simulation preserves that relationship (checked end-to-end in the
        // integration tests), here we just require a healthy average degree.
        assert!(stats.avg_degree > 3.0);
    }

    #[test]
    fn every_company_has_a_verified_anchor_account() {
        let generated = generate_social(&SocialConfig::pokec_like(1));
        let companies = generated.graph.nodes_with_label(intern("company"));
        for &company in companies {
            let accounts = generated
                .graph
                .in_neighbors(company)
                .iter()
                .filter(|&&(_, l)| l == intern("keys"))
                .count();
            assert!(accounts >= 1);
        }
    }
}
