//! Property test: `parse(print(rule)) ≡ rule` over generated rule ASTs.
//!
//! Two generators feed the property:
//!
//! * a hand-rolled AST generator that stresses the printer's corners —
//!   quoted names, unicode, escapes, negative constants, nested
//!   arithmetic with every operator, denial and trivial consequences;
//! * `ngd_datagen::generate_rules`, the generator behind the synthetic
//!   rule sets of the experiments, proving that machine-made rule sets
//!   are expressible in `.ngdl`.

use ngd_core::{Expr, Literal, Ngd, Pattern, Var};
use ngd_datagen::{generate_rules, generate_synthetic, RuleGenConfig, StdRng, SyntheticConfig};
use ngd_lang::{denial_literal, parse_rule, parse_rules, print_rule, print_rule_set};

const NAME_POOL: &[&str] = &[
    "x",
    "y",
    "z",
    "account",
    "m1",
    "_",
    "_hidden",
    "total pop",
    "weird \"name\"",
    "tab\tand\nnewline",
    "ПереводЗаголовка",
    "0starts_with_digit",
    "back\\slash",
    "rule",
    "match",
    "false",
];

const LABEL_POOL: &[&str] = &[
    "_",
    "Account",
    "date",
    "integer",
    "place",
    "weird label",
    "数",
];

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn gen_linear_expr(rng: &mut StdRng, nvars: u32, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        match rng.gen_range(0..4u32) {
            0 => Expr::Const(rng.gen_range(-1_000..1_000i64)),
            1 => Expr::string(pick(rng, NAME_POOL)),
            _ => Expr::attr(Var(rng.gen_range(0..nvars)), pick(rng, NAME_POOL)),
        }
    } else {
        let a = gen_linear_expr(rng, nvars, depth - 1);
        let b = gen_linear_expr(rng, nvars, depth - 1);
        // Multiplication and division keep one side constant so the
        // generated rule stays linear (Ngd::new validates linearity).
        let c = rng.gen_range(1..50i64);
        match rng.gen_range(0..5u32) {
            0 => Expr::add(a, b),
            1 => Expr::sub(a, b),
            2 => Expr::scale(c, a),
            3 => Expr::div_const(a, c),
            _ => Expr::abs(a),
        }
    }
}

fn gen_literal(rng: &mut StdRng, nvars: u32) -> Literal {
    let lhs = gen_linear_expr(rng, nvars, 3);
    let rhs = gen_linear_expr(rng, nvars, 3);
    match rng.gen_range(0..6u32) {
        0 => Literal::eq(lhs, rhs),
        1 => Literal::ne(lhs, rhs),
        2 => Literal::lt(lhs, rhs),
        3 => Literal::le(lhs, rhs),
        4 => Literal::gt(lhs, rhs),
        _ => Literal::ge(lhs, rhs),
    }
}

fn gen_rule(rng: &mut StdRng, index: usize) -> Ngd {
    let mut pattern = Pattern::new();
    let nvars: u32 = rng.gen_range(1..6u32);
    for v in 0..nvars {
        // Distinct names: suffix the pool name with the variable index.
        let name = format!("{} {v}", pick(rng, NAME_POOL));
        pattern.add_node(&name, pick(rng, LABEL_POOL));
    }
    let nedges = rng.gen_range(0..2 * nvars);
    for _ in 0..nedges {
        let src = Var(rng.gen_range(0..nvars));
        let dst = Var(rng.gen_range(0..nvars));
        pattern.add_edge(src, dst, pick(rng, LABEL_POOL));
    }
    let premise: Vec<Literal> = (0..rng.gen_range(0..4u32))
        .map(|_| gen_literal(rng, nvars))
        .collect();
    let consequence = match rng.gen_range(0..4u32) {
        0 => vec![denial_literal()],
        1 => Vec::new(),
        _ => (0..rng.gen_range(1..3u32))
            .map(|_| gen_literal(rng, nvars))
            .collect(),
    };
    let id = if rng.gen_bool(0.2) {
        format!("{} #{index}", pick(rng, NAME_POOL))
    } else {
        format!("rule_{index}")
    };
    Ngd::new(id, pattern, premise, consequence).expect("generated rules are linear")
}

#[test]
fn generated_asts_round_trip_through_print_and_parse() {
    let mut rng = StdRng::seed_from_u64(0x9d1_7a3);
    for index in 0..300 {
        let rule = gen_rule(&mut rng, index);
        let printed = print_rule(&rule);
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("rule #{index} failed to reparse:\n{printed}\n{e}"));
        assert_eq!(
            reparsed, rule,
            "round-trip changed rule #{index}:\n{printed}"
        );
    }
}

#[test]
fn whole_generated_rule_sets_round_trip() {
    let mut rng = StdRng::seed_from_u64(42);
    let rules: Vec<Ngd> = (0..40).map(|i| gen_rule(&mut rng, i)).collect();
    let sigma = ngd_core::RuleSet::from_rules(rules);
    let reparsed = parse_rules(&print_rule_set(&sigma)).expect("printed set reparses");
    assert_eq!(reparsed.rules(), sigma.rules());
}

#[test]
fn synthetic_experiment_rules_are_expressible_in_ngdl() {
    let graph = generate_synthetic(&SyntheticConfig::paper_style(2_000, 6_000).with_seed(7));
    let sigma = generate_rules(&graph, &RuleGenConfig::paper_style(500, 4).with_seed(11));
    assert!(!sigma.is_empty());
    let printed = print_rule_set(&sigma);
    let reparsed = parse_rules(&printed).expect("synthetic rules reparse");
    assert_eq!(reparsed.rules(), sigma.rules());
}
