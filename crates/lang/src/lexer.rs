//! The `.ngdl` lexer: source text → spanned tokens.
//!
//! Tokens carry their 1-based line and column so the parser can raise
//! [`ParseError`]s that point a caret at the exact character.  Keywords are
//! *not* distinguished here — `RULE`, `MATCH`, `WHERE`, `AND`, `TRUE` and
//! `FALSE` lex as ordinary words and are recognised case-insensitively by
//! the parser in the positions where they matter, so `match` stays usable
//! as, say, an attribute name.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// A bare word: identifier or (contextually) a keyword.
    Word(String),
    /// An unsigned integer magnitude; the parser applies any leading `-`,
    /// which is how `-9223372036854775808` (= `i64::MIN`) stays readable.
    Int(u64),
    /// A quoted string with escapes resolved.
    Str(String),
    /// Punctuation or an operator, normalised to its canonical spelling
    /// (`≤` lexes as `<=`, `≠` as `!=`, `≥` as `>=`).
    Sym(&'static str),
}

impl Tok {
    /// How the token reads in an error message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Int(i) => format!("`{i}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Sym(s) => format!("`{s}`"),
        }
    }
}

/// A token plus the position of its first character.
#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

/// Tokenize a `.ngdl` source.  Comments run from `#` or `//` to the end of
/// the line.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            toks.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let next = chars.get(i + 1).copied();
        let next2 = chars.get(i + 2).copied();
        // Advance over `n` characters of the current line.
        macro_rules! take {
            ($n:expr) => {{
                i += $n;
                col += $n;
            }};
        }
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => take!(1),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' => {
                push!(Tok::Sym("/"), tline, tcol);
                take!(1);
            }
            '"' => {
                take!(1);
                let mut s = String::new();
                loop {
                    match chars.get(i).copied() {
                        None | Some('\n') => {
                            return Err(ParseError::at(
                                source,
                                tline,
                                tcol,
                                "unterminated string literal",
                            ))
                        }
                        Some('"') => {
                            take!(1);
                            break;
                        }
                        Some('\\') => {
                            let escaped = match chars.get(i + 1).copied() {
                                Some('\\') => '\\',
                                Some('"') => '"',
                                Some('n') => '\n',
                                Some('t') => '\t',
                                other => {
                                    return Err(ParseError::at(
                                        source,
                                        line,
                                        col,
                                        format!(
                                            "unknown escape `\\{}` in string literal",
                                            other.map(String::from).unwrap_or_default()
                                        ),
                                    ))
                                }
                            };
                            s.push(escaped);
                            take!(2);
                        }
                        Some(ch) => {
                            s.push(ch);
                            take!(1);
                        }
                    }
                }
                push!(Tok::Str(s), tline, tcol);
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(d)))
                        .ok_or_else(|| {
                            ParseError::at(source, tline, tcol, "integer literal overflows")
                        })?;
                    take!(1);
                }
                push!(Tok::Int(value), tline, tcol);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&d) = chars.get(i) {
                    if d.is_alphanumeric() || d == '_' {
                        word.push(d);
                        take!(1);
                    } else {
                        break;
                    }
                }
                push!(Tok::Word(word), tline, tcol);
            }
            '-' if next == Some('[') => {
                push!(Tok::Sym("-["), tline, tcol);
                take!(2);
            }
            '-' => {
                push!(Tok::Sym("-"), tline, tcol);
                take!(1);
            }
            '<' if next == Some('-') && next2 == Some('[') => {
                push!(Tok::Sym("<-["), tline, tcol);
                take!(3);
            }
            '<' if next == Some('=') => {
                push!(Tok::Sym("<="), tline, tcol);
                take!(2);
            }
            '<' if next == Some('>') => {
                push!(Tok::Sym("<>"), tline, tcol);
                take!(2);
            }
            '<' => {
                push!(Tok::Sym("<"), tline, tcol);
                take!(1);
            }
            ']' if next == Some('-') && next2 == Some('>') => {
                push!(Tok::Sym("]->"), tline, tcol);
                take!(3);
            }
            ']' if next == Some('-') => {
                push!(Tok::Sym("]-"), tline, tcol);
                take!(2);
            }
            '=' if next == Some('>') => {
                push!(Tok::Sym("=>"), tline, tcol);
                take!(2);
            }
            '=' if next == Some('=') => {
                push!(Tok::Sym("=="), tline, tcol);
                take!(2);
            }
            '=' => {
                push!(Tok::Sym("="), tline, tcol);
                take!(1);
            }
            '!' if next == Some('=') => {
                push!(Tok::Sym("!="), tline, tcol);
                take!(2);
            }
            '>' if next == Some('=') => {
                push!(Tok::Sym(">="), tline, tcol);
                take!(2);
            }
            '>' => {
                push!(Tok::Sym(">"), tline, tcol);
                take!(1);
            }
            '≤' => {
                push!(Tok::Sym("<="), tline, tcol);
                take!(1);
            }
            '≥' => {
                push!(Tok::Sym(">="), tline, tcol);
                take!(1);
            }
            '≠' => {
                push!(Tok::Sym("!="), tline, tcol);
                take!(1);
            }
            '&' if next == Some('&') => {
                push!(Tok::Sym("&&"), tline, tcol);
                take!(2);
            }
            '(' => {
                push!(Tok::Sym("("), tline, tcol);
                take!(1);
            }
            ')' => {
                push!(Tok::Sym(")"), tline, tcol);
                take!(1);
            }
            ':' => {
                push!(Tok::Sym(":"), tline, tcol);
                take!(1);
            }
            ',' => {
                push!(Tok::Sym(","), tline, tcol);
                take!(1);
            }
            '.' => {
                push!(Tok::Sym("."), tline, tcol);
                take!(1);
            }
            '|' => {
                push!(Tok::Sym("|"), tline, tcol);
                take!(1);
            }
            '+' => {
                push!(Tok::Sym("+"), tline, tcol);
                take!(1);
            }
            '*' => {
                push!(Tok::Sym("*"), tline, tcol);
                take!(1);
            }
            other => {
                return Err(ParseError::at(
                    source,
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Tok> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn edges_arrows_and_comparisons() {
        assert_eq!(
            kinds("(x)-[:f]->(y)<-[:g]-(z)"),
            vec![
                Tok::Sym("("),
                Tok::Word("x".into()),
                Tok::Sym(")"),
                Tok::Sym("-["),
                Tok::Sym(":"),
                Tok::Word("f".into()),
                Tok::Sym("]->"),
                Tok::Sym("("),
                Tok::Word("y".into()),
                Tok::Sym(")"),
                Tok::Sym("<-["),
                Tok::Sym(":"),
                Tok::Word("g".into()),
                Tok::Sym("]-"),
                Tok::Sym("("),
                Tok::Word("z".into()),
                Tok::Sym(")"),
            ]
        );
        assert_eq!(
            kinds("=> >= <= != <> == = < >"),
            vec![
                Tok::Sym("=>"),
                Tok::Sym(">="),
                Tok::Sym("<="),
                Tok::Sym("!="),
                Tok::Sym("<>"),
                Tok::Sym("=="),
                Tok::Sym("="),
                Tok::Sym("<"),
                Tok::Sym(">"),
            ]
        );
    }

    #[test]
    fn unicode_operators_normalise() {
        assert_eq!(
            kinds("≤ ≥ ≠"),
            vec![Tok::Sym("<="), Tok::Sym(">="), Tok::Sym("!=")]
        );
    }

    #[test]
    fn a_less_than_negative_number_is_not_an_edge() {
        assert_eq!(
            kinds("a<-5"),
            vec![
                Tok::Word("a".into()),
                Tok::Sym("<"),
                Tok::Sym("-"),
                Tok::Int(5),
            ]
        );
    }

    #[test]
    fn strings_support_escapes() {
        assert_eq!(
            kinds(r#""living people" "a\"b\\c\n""#),
            vec![
                Tok::Str("living people".into()),
                Tok::Str("a\"b\\c\n".into()),
            ]
        );
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn comments_and_spans() {
        let toks = tokenize("# comment\nRULE r: // trailing\n  MATCH").unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[3].tok, Tok::Word("MATCH".into()));
        assert_eq!(toks[3].line, 3);
        assert_eq!(toks[3].col, 3);
    }

    #[test]
    fn huge_magnitudes_lex_for_the_min_const() {
        assert_eq!(kinds("9223372036854775808"), vec![Tok::Int(1u64 << 63)]);
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
