//! Recursive-descent parser: `.ngdl` tokens → lowered [`Ngd`] rules.
//!
//! Lowering happens *during* parsing: pattern variables are assigned
//! [`Var`] indices in order of first mention in the `MATCH` clause, which
//! is exactly the declaration order the match planner uses to break
//! cost-estimate ties — so the order a rule author lists nodes in acts as
//! a seed hint for `ngd_match::plan::compile_plan`.

use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Tok};
use ngd_core::{CmpOp, Expr, Literal, Ngd, Pattern, RuleSet, Var};
use ngd_graph::resolve;

/// The consequence literal a denial rule (`=> false`) lowers to: `0 = 1`
/// can never hold, so every match satisfying the premise is a violation.
pub fn denial_literal() -> Literal {
    Literal::eq(Expr::Const(0), Expr::Const(1))
}

/// Does this rule's consequence spell "reject every premise match"?
///
/// True exactly when the consequence is the single literal produced by
/// [`denial_literal`]; the pretty-printer renders such rules as
/// `=> false`.
pub fn is_denial(rule: &Ngd) -> bool {
    rule.consequence.len() == 1 && rule.consequence[0] == denial_literal()
}

/// Parse a `.ngdl` source holding any number of rules.
///
/// An empty (or comment-only) source parses to an empty [`RuleSet`].
pub fn parse_rules(source: &str) -> Result<RuleSet, ParseError> {
    let mut parser = Parser::new(source)?;
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.rule()?);
    }
    Ok(RuleSet::from_rules(rules))
}

/// Parse a `.ngdl` source that must hold exactly one rule.
pub fn parse_rule(source: &str) -> Result<Ngd, ParseError> {
    let mut parser = Parser::new(source)?;
    if parser.peek().is_none() {
        return Err(parser.err_here("expected a rule, found end of input"));
    }
    let rule = parser.rule()?;
    if parser.peek().is_some() {
        return Err(parser.err_here("expected end of input after the first rule"));
    }
    Ok(rule)
}

/// Comparison operators, in the spellings the lexer emits.
const CMP_SYMS: [&str; 8] = ["=", "==", "!=", "<>", "<", "<=", ">", ">="];

/// Symbols that continue an expression after a bare `true`/`false` word,
/// forcing the word to read as the constant `1`/`0` instead of as a
/// consequence keyword.
const EXPR_CONTINUATIONS: [&str; 13] = [
    "=", "==", "!=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", ".",
];

struct Parser<'s> {
    source: &'s str,
    toks: Vec<Spanned>,
    pos: usize,
    pattern: Pattern,
}

impl<'s> Parser<'s> {
    fn new(source: &'s str) -> Result<Parser<'s>, ParseError> {
        Ok(Parser {
            source,
            toks: tokenize(source)?,
            pos: 0,
            pattern: Pattern::new(),
        })
    }

    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Spanned> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Spanned {
        let tok = self.toks[self.pos].clone();
        self.pos += 1;
        tok
    }

    /// Position just past the last character of the source, for
    /// end-of-input errors.
    fn end_pos(&self) -> (usize, usize) {
        let line = 1 + self.source.chars().filter(|&c| c == '\n').count();
        let col = 1 + self
            .source
            .rsplit('\n')
            .next()
            .map_or(0, |last| last.chars().count());
        (line, col)
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::at(self.source, t.line, t.col, message),
            None => {
                let (line, col) = self.end_pos();
                ParseError::at(self.source, line, col, message)
            }
        }
    }

    fn err_at(&self, line: usize, col: usize, message: impl Into<String>) -> ParseError {
        ParseError::at(self.source, line, col, message)
    }

    fn expected(&self, what: &str) -> ParseError {
        match self.peek() {
            Some(t) => self.err_here(format!("expected {what}, found {}", t.tok.describe())),
            None => self.err_here(format!("expected {what}, found end of input")),
        }
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Sym(s), .. }) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.expected(&format!("`{sym}`")))
        }
    }

    /// Is the current token the (case-insensitive) keyword `word`?
    fn peek_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Word(w), .. }) if w.eq_ignore_ascii_case(word))
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.peek_keyword(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_keyword(word) {
            Ok(())
        } else {
            Err(self.expected(&format!("`{word}`")))
        }
    }

    /// A name: a bare word or a quoted string (for names that are not
    /// identifier-shaped).  Returns the name with its span.
    fn name(&mut self, what: &str) -> Result<(String, usize, usize), ParseError> {
        match self.peek() {
            Some(Spanned {
                tok: Tok::Word(w),
                line,
                col,
            }) => {
                let out = (w.clone(), *line, *col);
                self.pos += 1;
                Ok(out)
            }
            Some(Spanned {
                tok: Tok::Str(s),
                line,
                col,
            }) => {
                let out = (s.clone(), *line, *col);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.expected(what)),
        }
    }

    /// `RULE name : MATCH pattern [WHERE premise] => consequence`
    fn rule(&mut self) -> Result<Ngd, ParseError> {
        self.pattern = Pattern::new();
        self.expect_keyword("RULE")?;
        let (id, id_line, id_col) = self.name("a rule name")?;
        self.expect_sym(":")?;
        self.expect_keyword("MATCH")?;
        self.path()?;
        while self.eat_sym(",") {
            self.path()?;
        }
        let premise = if self.eat_keyword("WHERE") {
            self.literals()?
        } else {
            Vec::new()
        };
        self.expect_sym("=>")?;
        let consequence = self.consequence()?;
        let pattern = std::mem::take(&mut self.pattern);
        Ngd::new(&id, pattern, premise, consequence)
            .map_err(|e| self.err_at(id_line, id_col, format!("invalid rule `{id}`: {e}")))
    }

    /// One chain `(x)-[:l]->(y)<-[:m]-(z)…` of nodes and edges.
    fn path(&mut self) -> Result<(), ParseError> {
        let mut cur = self.node()?;
        loop {
            if self.eat_sym("-[") {
                let label = self.edge_label()?;
                self.expect_sym("]->")?;
                let dst = self.node()?;
                self.pattern.add_edge(cur, dst, &label);
                cur = dst;
            } else if self.eat_sym("<-[") {
                let label = self.edge_label()?;
                self.expect_sym("]-")?;
                let src = self.node()?;
                self.pattern.add_edge(src, cur, &label);
                cur = src;
            } else {
                return Ok(());
            }
        }
    }

    /// The `:label` inside `-[:label]->`; the leading `:` is optional.
    fn edge_label(&mut self) -> Result<String, ParseError> {
        self.eat_sym(":");
        let (label, _, _) = self.name("an edge label")?;
        Ok(label)
    }

    /// `(name)`, `(name:label)` or `(name:_)`.  First mention declares the
    /// variable (an omitted label means wildcard); later mentions may
    /// repeat the label but must not contradict it.
    fn node(&mut self) -> Result<Var, ParseError> {
        self.expect_sym("(")?;
        let (name, _, _) = self.name("a variable name")?;
        let label = if self.eat_sym(":") {
            Some(self.name("a node label")?)
        } else {
            None
        };
        self.expect_sym(")")?;
        match self.pattern.var_by_name(&name) {
            Some(var) => {
                if let Some((label, lline, lcol)) = label {
                    let existing = resolve(self.pattern.label(var));
                    if existing != label {
                        return Err(self.err_at(
                            lline,
                            lcol,
                            format!(
                                "variable `{name}` was already declared with label `{existing}`"
                            ),
                        ));
                    }
                }
                Ok(var)
            }
            None => Ok(self
                .pattern
                .add_node(&name, label.as_ref().map_or("_", |(l, _, _)| l))),
        }
    }

    /// `literal ((`,`|AND|&&) literal)*`
    fn literals(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut lits = vec![self.literal()?];
        while self.eat_sym(",") || self.eat_sym("&&") || self.eat_keyword("AND") {
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    /// `FALSE` (denial), `TRUE` (empty consequence) or a literal list.
    fn consequence(&mut self) -> Result<Vec<Literal>, ParseError> {
        if self.peek_keyword("FALSE") && !self.continues_expression() {
            self.pos += 1;
            return Ok(vec![denial_literal()]);
        }
        if self.peek_keyword("TRUE") && !self.continues_expression() {
            self.pos += 1;
            return Ok(Vec::new());
        }
        self.literals()
    }

    /// Does the token *after* the current one extend an expression?  Used
    /// to tell the consequence keyword `false` from the constant `false`
    /// in a literal such as `x.flag = false`.
    fn continues_expression(&self) -> bool {
        matches!(self.peek2(), Some(Spanned { tok: Tok::Sym(s), .. })
            if EXPR_CONTINUATIONS.contains(s))
    }

    /// `expr ⊗ expr` with `⊗` one of `= != <> < <= > >=`.
    fn literal(&mut self) -> Result<Literal, ParseError> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            Some(Spanned {
                tok: Tok::Sym(s), ..
            }) if CMP_SYMS.contains(s) => {
                let op = CmpOp::parse(s).expect("CMP_SYMS are all parseable");
                self.pos += 1;
                op
            }
            _ => return Err(self.expected("a comparison operator")),
        };
        let rhs = self.expr()?;
        Ok(Literal::new(lhs, op, rhs))
    }

    /// `term (("+"|"-") term)*`, left-associative.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_sym("+") {
                lhs = Expr::add(lhs, self.term()?);
            } else if self.eat_sym("-") {
                lhs = Expr::sub(lhs, self.term()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    /// `factor (("*"|"/") factor)*`, left-associative.
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat_sym("*") {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat_sym("/") {
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Spanned {
                tok: Tok::Sym("-"), ..
            }) => {
                self.pos += 1;
                // Fold `-` directly into an integer literal so negative
                // constants (including `i64::MIN`) lower to `Const`
                // rather than `0 - c`.
                if let Some(Spanned {
                    tok: Tok::Int(magnitude),
                    line,
                    col,
                }) = self.peek()
                {
                    let (magnitude, line, col) = (*magnitude, *line, *col);
                    let value = -(magnitude as i128);
                    if value < i64::MIN as i128 {
                        return Err(self.err_at(line, col, "integer literal overflows"));
                    }
                    self.pos += 1;
                    return Ok(Expr::Const(value as i64));
                }
                Ok(Expr::sub(Expr::Const(0), self.factor()?))
            }
            Some(Spanned {
                tok: Tok::Int(magnitude),
                line,
                col,
            }) => {
                let (magnitude, line, col) = (*magnitude, *line, *col);
                if magnitude > i64::MAX as u64 {
                    return Err(self.err_at(line, col, "integer literal overflows"));
                }
                self.pos += 1;
                Ok(Expr::Const(magnitude as i64))
            }
            Some(Spanned {
                tok: Tok::Sym("|"), ..
            }) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_sym("|")?;
                Ok(Expr::abs(inner))
            }
            Some(Spanned {
                tok: Tok::Sym("("), ..
            }) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Some(Spanned {
                tok: Tok::Str(_), ..
            }) => {
                // A quoted name followed by `.` is a variable reference;
                // otherwise it is a string constant.
                if matches!(
                    self.peek2(),
                    Some(Spanned {
                        tok: Tok::Sym("."),
                        ..
                    })
                ) {
                    self.attr_ref()
                } else {
                    let Spanned {
                        tok: Tok::Str(s), ..
                    } = self.bump()
                    else {
                        unreachable!()
                    };
                    Ok(Expr::string(&s))
                }
            }
            Some(Spanned {
                tok: Tok::Word(w), ..
            }) => {
                if matches!(
                    self.peek2(),
                    Some(Spanned {
                        tok: Tok::Sym("."),
                        ..
                    })
                ) {
                    self.attr_ref()
                } else if w.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    Ok(Expr::Const(1))
                } else if w.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    Ok(Expr::Const(0))
                } else {
                    Err(self.err_here(format!(
                        "expected `{w}.<attribute>` — bare variables have no value"
                    )))
                }
            }
            _ => Err(self.expected("an expression")),
        }
    }

    /// `var.attr` where `var` must be declared in the `MATCH` clause.
    fn attr_ref(&mut self) -> Result<Expr, ParseError> {
        let (var_name, vline, vcol) = self.name("a variable name")?;
        self.expect_sym(".")?;
        let (attr, _, _) = self.name("an attribute name")?;
        let var = self.pattern.var_by_name(&var_name).ok_or_else(|| {
            self.err_at(
                vline,
                vcol,
                format!("unknown variable `{var_name}` — declare it in the MATCH clause"),
            )
        })?;
        Ok(Expr::attr(var, &attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_issue_example_parses_and_lowers() {
        let rule = parse_rule(
            "RULE no_fake_accts: MATCH (x:Account)-[:follows]->(y:Account) \
             WHERE x.balance > 10 * y.balance => false",
        )
        .unwrap();
        assert_eq!(rule.id, "no_fake_accts");
        assert_eq!(rule.pattern.node_count(), 2);
        assert_eq!(rule.pattern.edges().len(), 1);
        assert_eq!(rule.premise.len(), 1);
        assert!(is_denial(&rule));
        let expected = Literal::gt(
            Expr::attr(Var(0), "balance"),
            Expr::scale(10, Expr::attr(Var(1), "balance")),
        );
        assert_eq!(rule.premise[0], expected);
    }

    #[test]
    fn vars_number_in_first_mention_order() {
        let rule =
            parse_rule("RULE r: MATCH (a:X)-[:e]->(b:Y), (c:Z)-[:f]->(a) => a.v = b.v").unwrap();
        assert_eq!(rule.pattern.name(Var(0)), "a");
        assert_eq!(rule.pattern.name(Var(1)), "b");
        assert_eq!(rule.pattern.name(Var(2)), "c");
        // (c)-[:f]->(a) with `a` referenced back by bare name.
        assert_eq!(rule.pattern.edges()[1].src, Var(2));
        assert_eq!(rule.pattern.edges()[1].dst, Var(0));
    }

    #[test]
    fn reversed_edges_swap_src_and_dst() {
        let rule = parse_rule("RULE r: MATCH (a:X)<-[:e]-(b:Y) => true").unwrap();
        let edge = &rule.pattern.edges()[0];
        assert_eq!(rule.pattern.name(edge.src), "b");
        assert_eq!(rule.pattern.name(edge.dst), "a");
        assert!(rule.consequence.is_empty());
    }

    #[test]
    fn unlabelled_nodes_are_wildcards() {
        let rule = parse_rule("RULE r: MATCH (x)-[:e]->(y:_) => x.v = y.v").unwrap();
        assert!(rule.pattern.is_wildcard(Var(0)));
        assert!(rule.pattern.is_wildcard(Var(1)));
    }

    #[test]
    fn label_conflicts_are_rejected_with_a_span() {
        let err =
            parse_rule("RULE r: MATCH (x:A)-[:e]->(y:B), (x:C)-[:f]->(y) => false").unwrap_err();
        assert!(
            err.message.contains("already declared with label `A`"),
            "{err}"
        );
        assert_eq!(err.line, 1);
    }

    #[test]
    fn undeclared_variables_in_expressions_are_rejected() {
        let err = parse_rule("RULE r: MATCH (x:A) WHERE z.v = 1 => false").unwrap_err();
        assert!(err.message.contains("unknown variable `z`"), "{err}");
    }

    #[test]
    fn negative_constants_fold_including_i64_min() {
        let rule = parse_rule("RULE r: MATCH (x:A) => x.v = -9223372036854775808").unwrap();
        assert_eq!(rule.consequence[0].rhs, Expr::Const(i64::MIN));
        assert!(parse_rule("RULE r: MATCH (x:A) => x.v = 9223372036854775808").is_err());
    }

    #[test]
    fn false_as_a_constant_still_works_in_literals() {
        let rule = parse_rule("RULE r: MATCH (x:A) => x.flag = false").unwrap();
        assert_eq!(
            rule.consequence[0],
            Literal::eq(Expr::attr(Var(0), "flag"), Expr::Const(0))
        );
        // …and `=> false` alone is the denial rule.
        let denial = parse_rule("RULE r: MATCH (x:A) => false").unwrap();
        assert!(is_denial(&denial));
    }

    #[test]
    fn precedence_and_abs() {
        let rule =
            parse_rule("RULE r: MATCH (x:A), (y:B) WHERE |x.v - y.v| <= 2 * x.v + 1 => false")
                .unwrap();
        let lit = &rule.premise[0];
        assert_eq!(
            lit.lhs,
            Expr::abs(Expr::sub(Expr::attr(Var(0), "v"), Expr::attr(Var(1), "v")))
        );
        assert_eq!(
            lit.rhs,
            Expr::add(Expr::scale(2, Expr::attr(Var(0), "v")), Expr::Const(1))
        );
    }

    #[test]
    fn quoted_names_reach_places_idents_cannot() {
        let rule = parse_rule(
            "RULE \"my rule\": MATCH (\"a node\":\"весь мир\") \
             WHERE \"a node\".\"total pop\" >= 0 => \"a node\".category != \"living people\"",
        )
        .unwrap();
        assert_eq!(rule.id, "my rule");
        assert_eq!(rule.pattern.name(Var(0)), "a node");
        assert!(rule.consequence[0].rhs == Expr::string("living people"));
    }

    #[test]
    fn nonlinear_rules_fail_with_the_rule_span() {
        let err = parse_rule("RULE nl: MATCH (x:A), (y:B) => x.v * y.v = 1").unwrap_err();
        assert!(err.message.contains("invalid rule `nl`"), "{err}");
        assert!(err.message.contains("non-linear"), "{err}");
    }

    #[test]
    fn multiple_rules_and_empty_sources() {
        let sigma =
            parse_rules("# two rules\nRULE a: MATCH (x:A) => false\nRULE b: MATCH (y:B) => true\n")
                .unwrap();
        assert_eq!(sigma.len(), 2);
        assert!(sigma.by_id("a").is_some());
        assert!(parse_rules("  # nothing here\n").unwrap().is_empty());
        assert!(parse_rule("").is_err());
    }

    #[test]
    fn errors_point_at_the_offending_token() {
        let err = parse_rules("RULE r:\n  MATCH (x:Account,)-[:f]->(y)\n  => false").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 19);
        assert!(err.to_string().contains('^'));
    }
}
