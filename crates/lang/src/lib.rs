//! # ngd-lang
//!
//! A declarative, Cypher-flavoured rule language (`.ngdl`) for the NGDs of
//! *"Catching Numeric Inconsistencies in Graphs"* (Fan, Liu, Lu, Tian —
//! SIGMOD 2018), replacing programmatic `Pattern`/`Literal` construction
//! with text files:
//!
//! ```text
//! RULE no_fake_accts:
//!   MATCH (x:Account)-[:follows]->(y:Account)
//!   WHERE x.balance > 10 * y.balance
//!   => false
//! ```
//!
//! The crate provides a hand-written lexer and recursive-descent parser
//! ([`parse_rules`], [`parse_rule`]) that lower directly onto
//! `ngd_core::{Pattern, Ngd, RuleSet}`, a canonical pretty-printer
//! ([`print_rule`], [`print_rule_set`]) with `parse(print(r)) ≡ r`, and a
//! format-sniffing loader ([`load_rules`]) that accepts `.ngdl`, the
//! legacy `rule … { … }` DSL of `ngd_core::parser`, and the JSON rule
//! interchange format behind one entry point — so every rule-loading
//! surface (`ngd-serve --rules`, `ngd-cli`, examples) understands all
//! three.
//!
//! Variables are numbered in order of first mention in the `MATCH`
//! clause, and the match planner breaks cost ties toward lower variable
//! indices — so the order a rule lists its nodes doubles as a seed hint
//! for `ngd_match::plan::compile_plan`.
//!
//! Errors are span-carrying: [`ParseError`] renders a caret snippet
//! pointing at the offending character, in the house style of
//! `PersistError`/`ProtocolError`.
//!
//! ## Example
//!
//! ```
//! use ngd_lang::{parse_rules, print_rule, is_denial};
//!
//! let sigma = parse_rules(
//!     r#"
//!     // Entities cannot be destroyed before they are created.
//!     RULE creation_before_destruction:
//!       MATCH (x)-[:wasCreatedOnDate]->(y:date),
//!             (x)-[:wasDestroyedOnDate]->(z:date)
//!       => z.val - y.val >= 1
//!     "#,
//! )?;
//! assert_eq!(sigma.len(), 1);
//! let rule = sigma.by_id("creation_before_destruction").unwrap();
//! assert_eq!(rule.pattern.node_count(), 3);
//! assert!(!is_denial(rule));
//!
//! // The canonical printed form re-parses to the identical rule.
//! let reparsed = ngd_lang::parse_rule(&print_rule(rule))?;
//! assert_eq!(&reparsed, rule);
//! # Ok::<(), ngd_lang::ParseError>(())
//! ```

pub mod error;
mod lexer;
pub mod parser;
pub mod printer;

pub use error::ParseError;
pub use parser::{denial_literal, is_denial, parse_rule, parse_rules};
pub use printer::{print_rule, print_rule_set};

use ngd_core::RuleSet;

/// The on-disk rule formats [`load_rules`] understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFormat {
    /// The JSON interchange format of `RuleSet::{to_json, from_json}`.
    Json,
    /// The legacy `rule name { match …; edge …; then …; }` DSL of
    /// `ngd_core::parser`.
    LegacyDsl,
    /// The declarative `RULE name: MATCH … => …` language of this crate.
    Ngdl,
}

impl std::fmt::Display for RuleFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RuleFormat::Json => "json",
            RuleFormat::LegacyDsl => "legacy dsl",
            RuleFormat::Ngdl => "ngdl",
        })
    }
}

/// Errors from [`load_rules`], tagged by the format that was attempted.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The source sniffed as JSON but failed to decode.
    Json(ngd_json::JsonError),
    /// The source sniffed as the legacy DSL but failed to parse.
    Legacy(ngd_core::ParseError),
    /// The source sniffed as `.ngdl` but failed to parse.
    Ngdl(ParseError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Json(e) => write!(f, "invalid rule json: {e}"),
            LoadError::Legacy(e) => write!(f, "{e}"),
            LoadError::Ngdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Sniff which rule format `source` is written in, without parsing it.
///
/// The decision needs only the leading shape of the text: a first
/// significant character of `[`, `{` or `"` means JSON; otherwise the
/// first `{` or `:` outside comments and strings decides between the
/// legacy `rule name { … }` DSL and `RULE name: …` ngdl.  Empty or
/// comment-only sources sniff as [`RuleFormat::Ngdl`], whose parser
/// accepts them as an empty rule set.
///
/// ```
/// use ngd_lang::{detect_format, RuleFormat};
///
/// assert_eq!(detect_format("[]"), RuleFormat::Json);
/// assert_eq!(detect_format("rule phi { match (x:_); then x.v = 1; }"),
///            RuleFormat::LegacyDsl);
/// assert_eq!(detect_format("RULE phi: MATCH (x) => false"),
///            RuleFormat::Ngdl);
/// ```
pub fn detect_format(source: &str) -> RuleFormat {
    let mut chars = source.chars().peekable();
    let mut first_significant = true;
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => continue,
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '/' if chars.peek() == Some(&'/') => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '"' if !first_significant => {
                // Skip the string body so a `:` inside a quoted name
                // does not decide the format.
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            c => {
                if first_significant {
                    if matches!(c, '[' | '{' | '"') {
                        return RuleFormat::Json;
                    }
                    first_significant = false;
                }
                match c {
                    '{' => return RuleFormat::LegacyDsl,
                    ':' => return RuleFormat::Ngdl,
                    _ => {}
                }
            }
        }
    }
    RuleFormat::Ngdl
}

/// Parse rules in whichever supported format `source` is written in.
///
/// This is the loader behind every rule-accepting entry point of the
/// workspace (`ngd-serve --rules`, the `ngd-cli` subcommands, the `RULES`
/// wire frame): it sniffs the format with [`detect_format`] and
/// dispatches to the matching parser.
///
/// ```
/// use ngd_lang::load_rules;
///
/// let from_ngdl = load_rules("RULE r: MATCH (x:A) => x.v >= 0")?;
/// let from_json = load_rules(&from_ngdl.to_json())?;
/// assert_eq!(from_ngdl.rules(), from_json.rules());
/// # Ok::<(), ngd_lang::LoadError>(())
/// ```
pub fn load_rules(source: &str) -> Result<RuleSet, LoadError> {
    match detect_format(source) {
        RuleFormat::Json => RuleSet::from_json(source).map_err(LoadError::Json),
        RuleFormat::LegacyDsl => ngd_core::parse_rule_set(source).map_err(LoadError::Legacy),
        RuleFormat::Ngdl => parse_rules(source).map_err(LoadError::Ngdl),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffing_ignores_comments_and_quoted_colons() {
        assert_eq!(detect_format(""), RuleFormat::Ngdl);
        assert_eq!(detect_format("# only a comment\n"), RuleFormat::Ngdl);
        assert_eq!(
            detect_format("// note\n  [ {\"id\": \"r\"} ]"),
            RuleFormat::Json
        );
        assert_eq!(
            detect_format("# note\nrule phi1 {\n  match (x:_);\n}"),
            RuleFormat::LegacyDsl
        );
        assert_eq!(
            detect_format("RULE \"has { brace\": MATCH (x) => false"),
            RuleFormat::Ngdl
        );
    }

    #[test]
    fn load_rules_accepts_all_three_formats() {
        let ngdl = "RULE r: MATCH (x:A)-[:e]->(y:B) WHERE x.v > y.v => false";
        let sigma = load_rules(ngdl).unwrap();
        assert_eq!(sigma.len(), 1);

        let json = sigma.to_json();
        assert_eq!(load_rules(&json).unwrap().rules(), sigma.rules());

        let legacy = "rule r {\n  match (x:A), (y:B);\n  edge x -[e]-> y;\n  when x.v > y.v;\n  then 0 = 1;\n}";
        assert_eq!(load_rules(legacy).unwrap().rules(), sigma.rules());
    }

    #[test]
    fn load_errors_carry_the_sniffed_format() {
        assert!(matches!(load_rules("[ broken"), Err(LoadError::Json(_))));
        assert!(matches!(
            load_rules("rule r { oops }"),
            Err(LoadError::Legacy(_))
        ));
        assert!(matches!(
            load_rules("RULE r: MATCH ("),
            Err(LoadError::Ngdl(_))
        ));
    }
}
