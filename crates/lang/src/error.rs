//! Span-carrying parse errors with rendered caret snippets.
//!
//! `.ngdl` sources are written by hand, so the parser reports *where* it
//! gave up, not just why: every [`ParseError`] carries a 1-based line and
//! column plus a pre-rendered two-line snippet pointing a caret at the
//! offending character — the same typed-error discipline as
//! `ngd_graph::PersistError` and `ngd_serve::ProtocolError`, specialised
//! to source text.

use std::fmt;

/// A syntax or lowering error in a `.ngdl` source, with its position.
///
/// The [`fmt::Display`] form is what `ngd-cli check` prints:
///
/// ```text
/// parse error at line 3, column 21: expected `)`, found `,`
///   3 |   MATCH (x:Account,)-[:follows]->(y)
///     |                   ^
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (or end of input).
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub col: usize,
    /// What the parser expected or rejected.
    pub message: String,
    /// The rendered source line + caret, ready to print under the message.
    pub snippet: String,
}

impl ParseError {
    /// Build an error at `(line, col)` of `source`, rendering the snippet.
    pub fn at(source: &str, line: usize, col: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            message: message.into(),
            snippet: render_snippet(source, line, col),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n{}", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Render `line` of `source` with a caret under character `col` (1-based).
fn render_snippet(source: &str, line: usize, col: usize) -> String {
    let Some(text) = source.lines().nth(line.saturating_sub(1)) else {
        return String::new();
    };
    let number = line.to_string();
    let gutter = " ".repeat(number.len());
    // The caret is positioned by counting characters, matching how the
    // lexer counts columns; tabs are rendered as-is.
    let pad: String = text
        .chars()
        .take(col.saturating_sub(1))
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    format!("  {number} | {text}\n  {gutter} | {pad}^")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_points_at_the_column() {
        let err = ParseError::at("RULE r:\n  MATCH (x:\n", 2, 9, "expected a label");
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 9);
        let display = err.to_string();
        assert!(display.contains("line 2, column 9"));
        assert!(display.contains("2 |   MATCH (x:"));
        let caret_line = display.lines().last().unwrap();
        assert_eq!(caret_line.chars().filter(|&c| c == '^').count(), 1);
        // The caret sits under column 9 of the source line.
        assert!(caret_line.ends_with("        ^"));
    }

    #[test]
    fn out_of_range_line_renders_no_snippet() {
        let err = ParseError::at("RULE", 99, 1, "unexpected end of input");
        assert!(err.snippet.is_empty());
        assert!(err.to_string().contains("line 99"));
    }

    #[test]
    fn tabs_keep_the_caret_aligned() {
        let err = ParseError::at("\tMATCH (", 1, 2, "x");
        assert!(err.snippet.contains("\n"));
        let caret_line = err.snippet.lines().last().unwrap();
        assert!(caret_line.contains('\t'));
    }
}
