//! Pretty-printer: lowered [`Ngd`] rules → canonical `.ngdl` text.
//!
//! The printed form is *canonical*: all pattern nodes are declared first,
//! in `Var` index order, then every edge follows on its own line with
//! bare variable references — so re-parsing assigns identical `Var`
//! indices and `parse(print(rule))` reconstructs the rule exactly.  Two
//! representational caveats, pinned by tests:
//!
//! * `Expr::Lit(Value::Int(i))` prints as the integer `i` and re-parses
//!   as the (semantically identical under evaluation) `Expr::Const(i)`;
//!   likewise `Lit(Value::Bool(_))` re-parses as `Const(0|1)`.  The
//!   parser never produces `Lit` for numerics, so parser output always
//!   round-trips exactly.
//! * A pattern with zero nodes has no `.ngdl` spelling (the grammar
//!   requires at least one node in `MATCH`).

use crate::parser::is_denial;
use ngd_core::{Expr, Literal, Ngd, Pattern, RuleSet};
use ngd_graph::{resolve, Value};
use std::fmt::Write;

/// Print one rule in canonical `.ngdl` form, ending with a newline.
pub fn print_rule(rule: &Ngd) -> String {
    let q = &rule.pattern;
    let mut out = String::new();
    let _ = write!(out, "RULE {}:\n  MATCH ", quoted(&rule.id));
    let nodes: Vec<String> = q
        .vars()
        .map(|v| format!("({}:{})", quoted(q.name(v)), quoted(resolve(q.label(v)))))
        .collect();
    out.push_str(&nodes.join(", "));
    for edge in q.edges() {
        let _ = write!(
            out,
            ",\n        ({})-[:{}]->({})",
            quoted(q.name(edge.src)),
            quoted(resolve(edge.label)),
            quoted(q.name(edge.dst))
        );
    }
    if !rule.premise.is_empty() {
        let _ = write!(out, "\n  WHERE {}", literals(q, &rule.premise));
    }
    out.push_str("\n  => ");
    if is_denial(rule) {
        out.push_str("false");
    } else if rule.consequence.is_empty() {
        out.push_str("true");
    } else {
        out.push_str(&literals(q, &rule.consequence));
    }
    out.push('\n');
    out
}

/// Print a whole rule set, rules separated by blank lines.
pub fn print_rule_set(sigma: &RuleSet) -> String {
    let printed: Vec<String> = sigma.iter().map(print_rule).collect();
    printed.join("\n")
}

fn literals(q: &Pattern, lits: &[Literal]) -> String {
    let printed: Vec<String> = lits
        .iter()
        .map(|l| {
            format!(
                "{} {} {}",
                expr(q, &l.lhs, 0, false),
                l.op,
                expr(q, &l.rhs, 0, false)
            )
        })
        .collect();
    printed.join(", ")
}

/// Binding strength: additive = 1, multiplicative = 2, atoms = 3.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Add(..) | Expr::Sub(..) => 1,
        Expr::Mul(..) | Expr::Div(..) => 2,
        Expr::Const(_) | Expr::Lit(_) | Expr::Attr(_) | Expr::Abs(_) => 3,
    }
}

/// Print `e` as it appears under a parent of precedence `parent`;
/// `is_right` is true for the right operand of a (left-associative)
/// binary parent, which needs parentheses even at *equal* precedence
/// (`a - (b - c)`).
fn expr(q: &Pattern, e: &Expr, parent: u8, is_right: bool) -> String {
    let mine = prec(e);
    let body = match e {
        Expr::Const(c) => c.to_string(),
        Expr::Lit(Value::Int(i)) => i.to_string(),
        Expr::Lit(Value::Bool(b)) => if *b { "true" } else { "false" }.to_string(),
        Expr::Lit(Value::Str(s)) => quote(s),
        Expr::Attr(r) => format!("{}.{}", quoted(q.name(r.var)), quoted(resolve(r.attr))),
        Expr::Abs(inner) => format!("|{}|", expr(q, inner, 0, false)),
        Expr::Add(a, b) => format!("{} + {}", expr(q, a, 1, false), expr(q, b, 1, true)),
        Expr::Sub(a, b) => format!("{} - {}", expr(q, a, 1, false), expr(q, b, 1, true)),
        Expr::Mul(a, b) => format!("{} * {}", expr(q, a, 2, false), expr(q, b, 2, true)),
        Expr::Div(a, b) => format!("{} / {}", expr(q, a, 2, false), expr(q, b, 2, true)),
    };
    if mine < parent || (is_right && mine == parent) {
        format!("({body})")
    } else {
        body
    }
}

/// Quote `name` unless it is identifier-shaped (letter or `_` first,
/// then letters, digits or `_`).
fn quoted(name: &str) -> String {
    let mut chars = name.chars();
    let ident_shaped = match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => chars.all(|c| c.is_alphanumeric() || c == '_'),
        _ => false,
    };
    if ident_shaped {
        name.to_owned()
    } else {
        quote(name)
    }
}

/// Render a quoted string literal with the escapes the lexer understands.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_rule, parse_rules};
    use ngd_core::paper;

    #[test]
    fn printed_paper_rules_reparse_to_the_same_rules() {
        for rule in paper::paper_rule_set().iter() {
            let printed = print_rule(rule);
            let reparsed = parse_rule(&printed).unwrap_or_else(|e| {
                panic!("printed `{}` failed to reparse:\n{printed}\n{e}", rule.id)
            });
            assert_eq!(
                &reparsed, rule,
                "round-trip changed `{}`:\n{printed}",
                rule.id
            );
        }
    }

    #[test]
    fn printed_rule_sets_reparse_wholesale() {
        let sigma = paper::paper_rule_set();
        let reparsed = parse_rules(&print_rule_set(&sigma)).unwrap();
        assert_eq!(reparsed.rules(), sigma.rules());
    }

    #[test]
    fn denial_and_trivial_consequences_print_as_keywords() {
        let denial = parse_rule("RULE d: MATCH (x:A) WHERE x.v > 0 => false").unwrap();
        assert!(print_rule(&denial).ends_with("=> false\n"));
        let trivial = parse_rule("RULE t: MATCH (x:A) => true").unwrap();
        assert!(print_rule(&trivial).ends_with("=> true\n"));
    }

    #[test]
    fn subtraction_keeps_its_grouping() {
        let rule =
            parse_rule("RULE r: MATCH (x:A) => x.a - (x.b - x.c) = x.a - x.b + x.c").unwrap();
        let printed = print_rule(&rule);
        assert!(printed.contains("x.a - (x.b - x.c)"), "{printed}");
        assert!(printed.contains("x.a - x.b + x.c"), "{printed}");
        assert_eq!(parse_rule(&printed).unwrap(), rule);
    }

    #[test]
    fn awkward_names_print_quoted_and_round_trip() {
        let rule = parse_rule(
            "RULE \"2nd rule\": MATCH (\"my node\":\"weird label\")-[:\"has part\"]->(y:B) \
             WHERE \"my node\".\"total pop\" >= 0 => y.note = \"say \\\"hi\\\"\\n\"",
        )
        .unwrap();
        let printed = print_rule(&rule);
        assert_eq!(parse_rule(&printed).unwrap(), rule, "{printed}");
    }
}
