//! Startup GC of leaked epoch files: a killed daemon cannot unlink the
//! `<stem>.e<epoch>-<seq>.ngds` files it wrote, so the next daemon to
//! start on the same snapshot collects them — but only after pinging
//! every address in the sibling `<file_name>.daemons` registry and
//! finding *none* alive.

#![cfg(unix)]

use ngd_core::{paper, RuleSet};
use ngd_detect::DetectorConfig;
use ngd_graph::persist::SnapshotWriter;
use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};
use std::path::{Path, PathBuf};

/// A dedicated directory per test: the GC scans every sibling of the
/// snapshot, so tests must not share a directory.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ngd-epoch-gc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn write_snapshot(dir: &Path) -> PathBuf {
    let (graph, _) = paper::figure1_g4();
    let path = dir.join("snap.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &path)
        .expect("snapshot writes");
    path
}

fn start_server(snap: &Path, sock: &Path) -> Server {
    Server::start(
        SnapshotStore::open(snap).expect("snapshot maps"),
        RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]),
        &ServeAddr::Unix(sock.to_path_buf()),
        DetectorConfig::with_processors(2),
    )
    .expect("server starts")
}

/// Epoch-file siblings of `snap.ngds` currently on disk, sorted.
fn epoch_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read test dir")
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.starts_with("snap.e") && n.ends_with(".ngds"))
        .collect();
    names.sort();
    names
}

#[test]
fn startup_collects_epoch_files_no_registered_daemon_answers_for() {
    let dir = temp_dir("stale");
    let snap = write_snapshot(&dir);
    let registry = dir.join("snap.ngds.daemons");

    // The crash scene: two leaked epoch files, a registry naming a daemon
    // that no longer answers (nothing listens on its socket path), and
    // two decoy files the GC's name matcher must leave alone.
    std::fs::write(dir.join("snap.e1-0.ngds"), b"leaked").unwrap();
    std::fs::write(dir.join("snap.e2-1.ngds"), b"leaked").unwrap();
    std::fs::write(dir.join("snap.e1.ngds"), b"not an epoch file").unwrap();
    std::fs::write(dir.join("other.e1-0.ngds"), b"different stem").unwrap();
    std::fs::write(
        &registry,
        format!("unix:{}\n", dir.join("dead.sock").display()),
    )
    .unwrap();

    let server = start_server(&snap, &dir.join("live.sock"));

    // Both leaked files are gone; the decoys and the snapshot survive.
    assert_eq!(epoch_files(&dir), vec!["snap.e1.ngds".to_string()]);
    assert!(snap.exists(), "the operator's snapshot is never touched");
    assert!(dir.join("other.e1-0.ngds").exists());

    // The registry now names exactly the live server.
    let text = std::fs::read_to_string(&registry).expect("registry rewritten");
    assert_eq!(text, format!("{}\n", server.local_addr()));

    // Graceful shutdown strips the line; the registry empties away.
    drop(server);
    assert!(!registry.exists(), "empty registry is removed");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_live_daemons_epoch_files_survive_another_daemons_startup() {
    let dir = temp_dir("live");
    let snap = write_snapshot(&dir);
    let registry = dir.join("snap.ngds.daemons");

    // Daemon A compacts once, creating a real epoch file it owns.
    let server_a = start_server(&snap, &dir.join("a.sock"));
    let mut client = ServeClient::connect_as(server_a.local_addr(), "gc-test").unwrap();
    let epoch = client.compact().expect("compaction publishes");
    assert_eq!(epoch.published_epoch, 1);
    drop(client);
    let owned = epoch_files(&dir);
    assert_eq!(owned.len(), 1, "compaction wrote one epoch file: {owned:?}");

    // Daemon B starts on the same snapshot while A lives: A answers the
    // liveness ping, so its epoch file must survive and both daemons end
    // up registered.
    let server_b = start_server(&snap, &dir.join("b.sock"));
    assert_eq!(epoch_files(&dir), owned, "a live daemon's files are kept");
    let text = std::fs::read_to_string(&registry).expect("registry exists");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.sort();
    let mut expected = vec![
        server_a.local_addr().to_string(),
        server_b.local_addr().to_string(),
    ];
    expected.sort();
    assert_eq!(lines, expected);

    // Graceful shutdowns deregister one line each and unlink A's epoch
    // file; the registry disappears with its last line.
    drop(server_b);
    assert_eq!(
        std::fs::read_to_string(&registry).expect("registry keeps A"),
        format!("{}\n", server_a.local_addr())
    );
    drop(server_a);
    assert!(epoch_files(&dir).is_empty(), "A unlinked its file on drop");
    assert!(!registry.exists());

    std::fs::remove_dir_all(&dir).ok();
}
