//! Reactor-specific service tests: slow-reader back-pressure, mid-stream
//! client disconnect, interleaved `EPOCH_SWITCHED` pushes, and the
//! bounded-thread guarantee (connections cost buffers, not OS threads).

#![cfg(unix)]

use ngd_core::{paper, RuleSet};
use ngd_datagen::{generate_social, SocialConfig};
use ngd_detect::{CostLedger, DetectorConfig, SearchStats};
use ngd_graph::persist::SnapshotWriter;
use ngd_graph::Graph;
use ngd_serve::protocol::{
    frame, read_frame, write_frame, DoneResponse, EpochNotice, HelloRequest, HelloResponse, Side,
    VioChunk,
};
use ngd_serve::{ServeAddr, ServeClient, ServeOptions, Server, SnapshotStore};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ngd-reactor-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A social graph where every non-verified account is fake: `5 ×
/// companies` φ4 violations, enough VIO_CHUNK bytes to overflow a small
/// write queue (and, scaled up, the kernel socket buffers too).
fn violation_heavy_graph(companies: usize) -> (Graph, RuleSet) {
    let config = SocialConfig {
        companies,
        accounts_per_company: 6,
        fake_rate: 1.0,
        profiles: 0,
        avg_follows: 0,
        seed: 0xC10C,
    };
    let generated = generate_social(&config);
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    (generated.graph, sigma)
}

fn start_server(graph: &Graph, sigma: &RuleSet, options: ServeOptions) -> Server {
    let snap_path = temp_path("snap.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let server = Server::start_with(
        SnapshotStore::open(&snap_path).expect("snapshot maps"),
        sigma.clone(),
        &ServeAddr::Tcp("127.0.0.1:0".into()),
        DetectorConfig::with_processors(2),
        options,
    )
    .expect("server starts");
    std::fs::remove_file(&snap_path).ok();
    server
}

/// A raw wire-level session: HELLO handshake only, so the test controls
/// exactly when (and whether) response bytes are consumed.
fn raw_session(addr: &ServeAddr) -> TcpStream {
    let spec = match addr {
        ServeAddr::Tcp(spec) => spec,
        other => panic!("expected tcp address, got {other}"),
    };
    let mut stream = TcpStream::connect(spec).expect("connect");
    stream.set_nodelay(true).ok();
    let hello = HelloRequest {
        client: "raw".into(),
    };
    write_frame(&mut stream, frame::HELLO, &hello.encode()).expect("hello");
    let (kind, _) = read_frame(&mut stream).expect("hello answer");
    assert_eq!(kind, frame::HELLO_OK);
    stream
}

/// Clamp a socket's receive buffer so TCP autotuning on loopback cannot
/// absorb a multi-megabyte stream for a reader that never reads — without
/// this, the kernel happily buffers the whole answer and the server-side
/// write queue never backs up.
#[cfg(target_os = "linux")]
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let size: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&size as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(all(unix, not(target_os = "linux")))]
fn shrink_rcvbuf(_stream: &TcpStream) {}

fn counter_value(client: &mut ServeClient, name: &str) -> u64 {
    let snapshot = client.metrics().expect("metrics");
    snapshot
        .counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

/// A slow reader must stall only its own session: its QUERY's chunk stream
/// hits the per-connection high-water mark and suspends, while another
/// session on the same daemon keeps answering, and the backlog never grows
/// past the configured bound.  Once the slow reader drains, it receives
/// the complete, correct stream.
#[test]
fn slow_reader_backpressure_does_not_stall_other_sessions() {
    // Large enough that the stream cannot hide in kernel socket buffers:
    // ~10k violations, megabytes of VIO_CHUNK frames.
    let (graph, sigma) = violation_heavy_graph(2000);
    let server = start_server(
        &graph,
        &sigma,
        ServeOptions {
            worker_threads: Some(2),
            // Tiny high-water mark so a few hundred violations overflow it
            // immediately.
            write_buffer_limit: Some(8 * 1024),
            ..ServeOptions::default()
        },
    );
    let addr = server.local_addr().clone();

    // Session A: ask for every violation, then stop reading.
    let mut slow = raw_session(&addr);
    shrink_rcvbuf(&slow);
    write_frame(&mut slow, frame::QUERY, &[]).expect("query");

    // Give the worker time to run the detection and hit the high-water
    // mark (the socket + queue can only absorb a fraction of the stream).
    let mut fast = ServeClient::connect_as(&addr, "fast").expect("fast connects");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if counter_value(&mut fast, "serve.backpressure.stalls") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backpressure stall never recorded"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Session B stays fully responsive while A is stalled.
    let started = Instant::now();
    for _ in 0..5 {
        let stats = fast.stats().expect("stats while A stalled");
        assert!(stats.sessions_active >= 2);
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "responsive session was starved by a slow reader"
    );

    // Now drain A: the full stream arrives, bounded queue or not.
    let expected = ngd_detect::dect(&sigma, &graph).violations.len() as u64;
    assert!(expected > 500, "workload should be violation-heavy");
    let mut streamed = 0u64;
    loop {
        let (kind, payload) = read_frame(&mut slow).expect("slow drain");
        match kind {
            frame::VIO_CHUNK => {
                streamed += VioChunk::decode(&payload).expect("chunk").violations.len() as u64;
            }
            frame::QUERY_DONE => {
                let done = DoneResponse::decode(&payload).expect("done");
                assert_eq!(done.added_total, expected);
                break;
            }
            other => panic!("unexpected frame kind {other}"),
        }
    }
    assert_eq!(streamed, expected);

    fast.shutdown_server().expect("shutdown");
    drop(fast);
    drop(slow);
    server.wait();
}

/// A client that vanishes mid-stream must not take the daemon with it:
/// its session is torn down (snapshot pin released, active count drops)
/// and other sessions keep working.
#[test]
fn mid_stream_disconnect_tears_down_only_that_session() {
    let (graph, sigma) = violation_heavy_graph(150);
    let server = start_server(
        &graph,
        &sigma,
        ServeOptions {
            worker_threads: Some(2),
            write_buffer_limit: Some(8 * 1024),
            ..ServeOptions::default()
        },
    );
    let addr = server.local_addr().clone();

    // Session A: start a violation-heavy QUERY, read one chunk, vanish.
    let mut doomed = raw_session(&addr);
    write_frame(&mut doomed, frame::QUERY, &[]).expect("query");
    let (kind, _) = read_frame(&mut doomed).expect("first chunk");
    assert_eq!(kind, frame::VIO_CHUNK);
    drop(doomed);

    // Session B observes A's teardown and keeps being served.
    let mut survivor = ServeClient::connect_as(&addr, "survivor").expect("survivor connects");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = survivor.stats().expect("stats after disconnect");
        if stats.sessions_active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead session was never torn down (sessions_active = {})",
            stats.sessions_active
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let served = survivor.query().expect("daemon still serves");
    assert!(!served.violations.is_empty());

    survivor.shutdown_server().expect("shutdown");
    drop(survivor);
    server.wait();
}

/// `EPOCH_SWITCHED` pushes interleaved *between* the `VIO_CHUNK` frames of
/// one answer (what a compaction racing an expansion produces) must be
/// absorbed transparently: totals still verify, every notice is counted.
#[test]
fn client_absorbs_epoch_switches_between_chunks() {
    // A scripted server: no daemon, just this exact frame sequence.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = ServeAddr::Tcp(listener.local_addr().expect("addr").to_string());

    let script = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let (kind, _) = read_frame(&mut stream).expect("hello");
        assert_eq!(kind, frame::HELLO);
        let hello = HelloResponse {
            server: "scripted".into(),
            node_count: 0,
            edge_count: 0,
            fragment_count: 0,
            rule_count: 1,
            diameter: 1,
        };
        write_frame(&mut stream, frame::HELLO_OK, &hello.encode()).expect("hello ok");

        let (kind, _) = read_frame(&mut stream).expect("query");
        assert_eq!(kind, frame::QUERY);
        let (graph, sigma) = violation_heavy_graph(10);
        let violations: Vec<_> = ngd_detect::dect(&sigma, &graph)
            .violations
            .iter()
            .take(3)
            .cloned()
            .collect();
        assert_eq!(violations.len(), 3);
        let chunk =
            |v: &ngd_match::Violation| VioChunk::encode_refs(Side::Added, std::slice::from_ref(&v));
        let notice = |epoch: u64| {
            EpochNotice {
                epoch,
                previous_epoch: epoch - 1,
                carried_nodes: 0,
                carried_ops: 0,
            }
            .encode()
        };
        // chunk, SWITCH, chunk, SWITCH, chunk, DONE — two pushes strictly
        // inside the stream.
        write_frame(&mut stream, frame::VIO_CHUNK, &chunk(&violations[0])).unwrap();
        write_frame(&mut stream, frame::EPOCH_SWITCHED, &notice(2)).unwrap();
        write_frame(&mut stream, frame::VIO_CHUNK, &chunk(&violations[1])).unwrap();
        write_frame(&mut stream, frame::EPOCH_SWITCHED, &notice(3)).unwrap();
        write_frame(&mut stream, frame::VIO_CHUNK, &chunk(&violations[2])).unwrap();
        let done = DoneResponse {
            epoch: 3,
            algorithm: "scripted".into(),
            elapsed_nanos: 1,
            processors: 1,
            neighborhood_nodes: 0,
            added_total: 3,
            removed_total: 0,
            stats: SearchStats::default(),
            cost: CostLedger::default(),
        };
        write_frame(&mut stream, frame::QUERY_DONE, &done.encode()).unwrap();
        stream.flush().unwrap();
    });

    let mut client = ServeClient::connect_as(&addr, "interleaved").expect("connect");
    let served = client.query().expect("query survives interleaved pushes");
    assert_eq!(served.violations.len(), 3);
    assert_eq!(client.epoch_switches_seen(), 2);
    assert_eq!(client.last_epoch_switch().map(|n| n.epoch), Some(3));
    script.join().expect("script thread");
}
