//! Smoke tests for `ngd-cli`'s offline error paths.
//!
//! Each failure mode must exit nonzero with a *typed*, human-readable
//! message — never a panic, never a zero exit on bad input.  Exercised as
//! a real subprocess via `CARGO_BIN_EXE_ngd-cli`.

use std::path::PathBuf;
use std::process::{Command, Output};

const GOOD_RULES: &str = r#"
RULE no_fake_accts:
  MATCH (x:Account)-[:follows]->(y:Account)
  WHERE x.balance > 10 * y.balance
  => false
"#;

// Line 3 ends in a dangling `>`: the caret must land there.
const BAD_RULES: &str = "RULE broken:\n  MATCH (x:Account)\n  WHERE x.balance >\n  => false\n";

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ngd-cli"))
        .args(args)
        .output()
        .expect("ngd-cli runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ngd-cli-smoke-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp rule file writes");
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = cli(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("usage:"),
        "no usage in: {}",
        stderr_of(&out)
    );
}

#[test]
fn an_unknown_command_prints_usage_and_exits_2() {
    let out = cli(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("usage:"));
}

#[test]
fn check_accepts_a_valid_ngdl_file() {
    let path = write_temp("good.ngdl", GOOD_RULES);
    let out = cli(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("1 rule(s) ok"),
        "unexpected stdout: {stdout}"
    );
    assert!(
        stdout.contains("no_fake_accts"),
        "unexpected stdout: {stdout}"
    );
}

#[test]
fn check_reports_a_parse_error_with_a_caret_and_exits_nonzero() {
    let path = write_temp("bad.ngdl", BAD_RULES);
    let out = cli(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("parse error at line"),
        "no positioned parse error in: {stderr}"
    );
    assert!(stderr.contains('^'), "no caret snippet in: {stderr}");
}

#[test]
fn check_on_a_missing_file_is_a_typed_read_error() {
    let out = cli(&["check", "/nonexistent/rules.ngdl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("read /nonexistent/rules.ngdl"));
}

#[test]
fn explain_with_a_bad_rule_id_is_a_typed_error_not_an_io_failure() {
    // The regression this pins: `explain <rules> bogus` used to treat
    // `bogus` as a snapshot path and die with a confusing open error.  A
    // second positional that does not look like a snapshot is a rule-id
    // filter, and an unknown id must say so, nonzero.
    let path = write_temp("explain.ngdl", GOOD_RULES);
    let out = cli(&["explain", path.to_str().unwrap(), "bogus"]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("no rule `bogus` in the rule set"),
        "unexpected stderr: {stderr}"
    );
    assert!(
        !stderr.contains("read bogus"),
        "rule id misparsed as a snapshot path: {stderr}"
    );
}

#[test]
fn explain_with_a_known_rule_id_prints_only_that_plan() {
    let path = write_temp("explain-ok.ngdl", GOOD_RULES);
    let out = cli(&["explain", path.to_str().unwrap(), "no_fake_accts"]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("no_fake_accts"));
}

#[test]
fn explain_with_a_missing_snapshot_file_fails_typed() {
    let path = write_temp("explain-snap.ngdl", GOOD_RULES);
    let out = cli(&["explain", path.to_str().unwrap(), "/nonexistent/snap.ngds"]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    // `.ngds` means "snapshot", so this must be a snapshot error, not a
    // "no rule" complaint.
    assert!(!stderr_of(&out).contains("no rule"));
}

#[test]
fn rules_against_a_dead_daemon_fails_typed_after_local_validation() {
    let path = write_temp("rules.ngdl", GOOD_RULES);
    // Port 9 (discard) is a safe never-listening target.
    let out = cli(&[
        "--connect",
        "tcp:127.0.0.1:9",
        "rules",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("connect"), "unexpected stderr: {stderr}");
}

#[test]
fn rules_with_a_parse_error_fails_locally_before_connecting() {
    let path = write_temp("rules-bad.ngdl", BAD_RULES);
    let out = cli(&[
        "--connect",
        "tcp:127.0.0.1:9",
        "rules",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    // Validated locally: the parse error surfaces, not a connection error.
    assert!(
        stderr.contains("parse error at line"),
        "unexpected stderr: {stderr}"
    );
}

#[test]
fn metrics_with_a_bogus_format_prints_usage_and_exits_2() {
    let out = cli(&["metrics", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("usage:"));
}

#[test]
fn top_with_a_bogus_interval_prints_usage_and_exits_2() {
    let out = cli(&["top", "-3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("usage:"));
}

#[test]
fn metrics_against_a_dead_daemon_fails_typed() {
    let out = cli(&["--connect", "tcp:127.0.0.1:9", "metrics"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("connect"));
}

/// End-to-end against a live daemon: `metrics` must emit valid Prometheus
/// text (and JSON with `--format json`), `top` must run its ticks and
/// exit, and `stats` must show the uptime and plan-cache hit-rate lines.
#[test]
fn metrics_top_and_stats_work_against_a_live_daemon() {
    use ngd_core::{paper, RuleSet};
    use ngd_detect::DetectorConfig;
    use ngd_graph::persist::SnapshotWriter;
    use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};

    let (graph, _) = paper::figure1_g4();
    let snap_path = write_temp("metrics-live.ngds", "");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let server = Server::start(
        SnapshotStore::open(&snap_path).unwrap(),
        RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]),
        &ServeAddr::Tcp("127.0.0.1:0".into()),
        DetectorConfig::default(),
    )
    .expect("server starts");
    let connect = server.local_addr().to_string();

    // Drive one detection so the registry has matcher/detect metrics.
    let mut warm = ServeClient::connect(server.local_addr()).unwrap();
    warm.query().unwrap();
    drop(warm);

    let prom = cli(&["--connect", &connect, "metrics"]);
    assert_eq!(prom.status.code(), Some(0), "{}", stderr_of(&prom));
    let text = stdout_of(&prom);
    assert!(
        text.contains("# TYPE ngd_serve_frame_query_count counter"),
        "no per-frame counter in:\n{text}"
    );
    assert!(text.contains("ngd_matcher_plan_cache_misses"));
    assert!(text.contains("ngd_serve_frame_query_latency_ns_bucket{le=\"+Inf\"}"));

    let json = cli(&["--connect", &connect, "metrics", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    assert!(stdout_of(&json).contains("\"serve.frame.query.count\""));

    let top = cli(&["--connect", &connect, "top", "0.05", "2"]);
    assert_eq!(top.status.code(), Some(0), "{}", stderr_of(&top));
    let top_text = stdout_of(&top);
    assert_eq!(top_text.matches("ngd-top @").count(), 2, "{top_text}");
    assert!(top_text.contains("plan cache"), "{top_text}");

    let stats = cli(&["--connect", &connect, "stats"]);
    assert_eq!(stats.status.code(), Some(0));
    let stats_text = stdout_of(&stats);
    assert!(stats_text.contains("hit rate"), "{stats_text}");
    assert!(stats_text.contains("service    : up "), "{stats_text}");

    let shutdown = cli(&["--connect", &connect, "shutdown"]);
    assert_eq!(shutdown.status.code(), Some(0));
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}
