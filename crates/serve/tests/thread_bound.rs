//! The C10K thread-boundedness guarantee, in a test binary of its own:
//! thread counts are process-global, so this must not share a process
//! with other tests that start servers.

#![cfg(all(unix, target_os = "linux"))]

use ngd_core::{paper, RuleSet};
use ngd_detect::DetectorConfig;
use ngd_graph::persist::SnapshotWriter;
use ngd_serve::{ServeAddr, ServeClient, ServeOptions, Server, SnapshotStore};

/// C10K property: OS threads are bounded by the worker pool, not the
/// connection count.  64 idle sessions on a 3-worker daemon must not add
/// a single serving thread.
#[test]
fn os_threads_bounded_by_worker_pool_not_connections() {
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let _ = fake;
    let snap_path =
        std::env::temp_dir().join(format!("ngd-threadbound-{}.ngds", std::process::id()));
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let server = Server::start_with(
        SnapshotStore::open(&snap_path).expect("snapshot maps"),
        sigma.clone(),
        &ServeAddr::Tcp("127.0.0.1:0".into()),
        DetectorConfig::with_processors(2),
        ServeOptions {
            worker_threads: Some(3),
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    std::fs::remove_file(&snap_path).ok();
    let addr = server.local_addr().clone();

    let serve_threads = || {
        let mut count = 0;
        for entry in std::fs::read_dir("/proc/self/task").expect("task dir") {
            let comm = entry.expect("task entry").path().join("comm");
            if let Ok(name) = std::fs::read_to_string(comm) {
                if name.trim_end().starts_with("ngd-serve") {
                    count += 1;
                }
            }
        }
        count
    };

    // 1 reactor + 3 workers, before and after 64 handshaken sessions.
    // A freshly spawned thread sets its comm name from inside its own
    // startup shim, so wait for all four to appear rather than racing it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let baseline = loop {
        let count = serve_threads();
        if count == 4 {
            break count;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expected reactor + 3 workers, saw {count}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let mut sessions = Vec::new();
    for i in 0..64 {
        sessions.push(ServeClient::connect_as(&addr, &format!("idle-{i}")).expect("connect"));
    }
    assert_eq!(
        serve_threads(),
        baseline,
        "idle connections must not cost OS threads"
    );
    // They are all live sessions, not just accepted sockets.
    let stats = sessions[0].stats().expect("stats");
    assert_eq!(stats.sessions_active, 64);

    sessions[0].shutdown_server().expect("shutdown");
    drop(sessions);
    server.wait();
}
