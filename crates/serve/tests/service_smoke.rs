//! Service smoke test: a daemon over a Unix-domain socket serving
//! concurrent sessions, session isolation, rule swaps, reset and graceful
//! shutdown.  (The full per-scenario byte-identity battery lives in the
//! workspace integration tests, `tests/serve_equivalence.rs`.)

#![cfg(unix)]

use ngd_core::{paper, RuleSet};
use ngd_detect::{pinc_dect, DetectorConfig};
use ngd_graph::persist::SnapshotWriter;
use ngd_graph::{intern, BatchUpdate, PartitionStrategy};
use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ngd-smoke-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn unix_socket_daemon_serves_concurrent_sessions_byte_identically() {
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("snap.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");

    let sock_path = temp_path("sock");
    let server = Server::start(
        SnapshotStore::open(&snap_path).expect("snapshot maps"),
        sigma.clone(),
        &ServeAddr::Unix(sock_path.clone()),
        DetectorConfig::with_processors(2),
    )
    .expect("server starts on a unix socket");
    let addr = server.local_addr().clone();

    // The batch every session submits: delete the fake account's status
    // edge (removes the figure-1 violation).
    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut delta = BatchUpdate::new();
    delta.delete_edge(fake, status, intern("status"));

    let reference = pinc_dect(&sigma, &graph, &delta, &DetectorConfig::with_processors(2));

    // Three concurrent sessions, each with its own overlay over the one
    // shared mapping; all must get the byte-identical answer.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                let delta = delta.clone();
                let expected = reference.delta.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect_as(&addr, &format!("smoke-{i}")).unwrap();
                    let served = client.submit_update(&delta).unwrap();
                    assert_eq!(served.delta, expected, "session {i}");
                    assert_eq!(
                        ngd_json::to_string(&served.delta),
                        ngd_json::to_string(&expected),
                        "session {i}: serialized deltas differ"
                    );
                    // Sessions are isolated: each accumulated exactly one op.
                    let stats = client.stats().unwrap();
                    assert_eq!(stats.accumulated_ops, 1, "session {i}");
                    assert_eq!(stats.batches_applied, 1, "session {i}");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("session thread");
        }
    });

    // Server-wide counters saw all three sessions.
    let mut client = ServeClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.updates_served, 3);
    assert!(stats.sessions_total >= 4);
    assert_eq!(stats.violations_streamed, 3 * reference.delta.len() as u64);

    // Reset + re-submit on a fresh session: same answer again.
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);
    client.reset().unwrap();
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);

    client.shutdown_server().unwrap();
    assert!(server.is_shutting_down());
    drop(client);
    server.wait();
    assert!(!sock_path.exists(), "socket file is cleaned up");
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn sharded_snapshots_serve_with_per_fragment_workers_and_report_remote_fetches() {
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("sharded.ngds");
    // Halo 0 forces cross-fragment candidate fetches, which must surface in
    // the served cost ledger.
    let sharded = graph.freeze_sharded(3, PartitionStrategy::EdgeCut, 0);
    SnapshotWriter::new()
        .write_sharded(&sharded, &snap_path)
        .expect("sharded snapshot writes");

    let server = Server::start(
        SnapshotStore::open(&snap_path).expect("auto-detects the sharded kind"),
        sigma.clone(),
        &ServeAddr::Unix(temp_path("sharded-sock")),
        DetectorConfig::default(),
    )
    .expect("server starts");

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.server_info().fragment_count, 3);

    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut delta = BatchUpdate::new();
    delta.delete_edge(fake, status, intern("status"));

    let reference = pinc_dect(&sigma, &graph, &delta, &DetectorConfig::default());
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);
    assert_eq!(served.done.algorithm, "PIncDect (sharded)");
    assert_eq!(served.done.processors, 3);
    assert!(
        served.done.cost.remote_fetches > 0,
        "halo-0 sharding must pay (and report) cross-fragment fetches"
    );

    client.shutdown_server().unwrap();
    drop(client);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn session_rule_swap_changes_answers_for_that_session_only() {
    let (graph, _) = paper::figure1_g2();
    let snap_path = temp_path("rules.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    // Default rules: φ2 only (one violation on G2).
    let server = Server::start(
        SnapshotStore::open(&snap_path).unwrap(),
        RuleSet::from_rules(vec![paper::phi2()]),
        &ServeAddr::Unix(temp_path("rules-sock")),
        DetectorConfig::with_processors(2),
    )
    .unwrap();

    let mut swapped = ServeClient::connect(server.local_addr()).unwrap();
    let mut vanilla = ServeClient::connect(server.local_addr()).unwrap();

    // Swap session A to a rule set with zero matches on G2.
    let message = swapped
        .set_rules(&RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]))
        .unwrap();
    assert!(message.contains("1 rule"), "{message}");
    assert_eq!(swapped.query().unwrap().violations.len(), 0);
    // Session B keeps the server default.
    assert_eq!(vanilla.query().unwrap().violations.len(), 1);

    vanilla.shutdown_server().unwrap();
    drop(vanilla);
    drop(swapped);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}

/// A socket file left behind by a killed daemon must not block a restart:
/// bind pings the path first, unlinks it when nothing answers, and
/// refuses to steal it from a live daemon.
#[test]
fn stale_unix_sockets_are_reclaimed_and_live_ones_are_not_stolen() {
    let (graph, _) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("stale.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let sock_path = temp_path("stale-sock");

    // Simulate the corpse of a SIGKILLed daemon: bind a listener and drop
    // it — closing the fd leaves the socket *file* behind (the kernel
    // never unlinks it), which is exactly what a killed daemon leaves.
    drop(std::os::unix::net::UnixListener::bind(&sock_path).unwrap());
    assert!(sock_path.exists(), "stale socket file is in place");

    let server = Server::start(
        SnapshotStore::open(&snap_path).expect("snapshot maps"),
        sigma.clone(),
        &ServeAddr::Unix(sock_path.clone()),
        DetectorConfig::default(),
    )
    .expect("restart reclaims the stale socket");
    let mut client = ServeClient::connect(server.local_addr()).expect("daemon is reachable");

    // A second daemon must NOT steal the path from the live one.
    let err = Server::start(
        SnapshotStore::open(&snap_path).unwrap(),
        sigma,
        &ServeAddr::Unix(sock_path.clone()),
        DetectorConfig::default(),
    );
    assert!(err.is_err(), "live socket must not be stolen");
    let message = format!("{}", err.err().unwrap());
    assert!(message.contains("live daemon"), "{message}");
    // The live daemon is unharmed.
    assert!(client.stats().is_ok());

    client.shutdown_server().unwrap();
    drop(client);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}

/// `ServeOptions::compact_after` folds a session's overlay into a fresh
/// epoch automatically once the pending net ops cross the threshold.
#[test]
fn auto_compaction_triggers_at_the_configured_overlay_size() {
    use ngd_serve::ServeOptions;
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("auto.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");

    let server = Server::start_with(
        SnapshotStore::open(&snap_path).unwrap(),
        sigma.clone(),
        &ServeAddr::Unix(temp_path("auto-sock")),
        DetectorConfig::default(),
        ServeOptions {
            compact_after: Some(2),
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    // Batch 1: one pending op — below the threshold.
    let mut b1 = BatchUpdate::new();
    b1.delete_edge(fake, status, intern("status"));
    let done = client.submit_update(&b1).unwrap().done;
    assert_eq!(done.epoch, 0);
    assert_eq!(client.epoch().unwrap().published_epoch, 0);

    // Batch 2: second net op — crosses the threshold, daemon compacts.
    let follower = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("follower"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut b2 = BatchUpdate::new();
    b2.delete_edge(fake, follower, intern("follower"));
    client.submit_update(&b2).unwrap();
    let epoch = client.epoch().unwrap();
    assert_eq!(
        epoch.published_epoch, 1,
        "auto-compaction published epoch 1"
    );
    assert_eq!(epoch.epoch, 1, "the triggering session re-rooted");
    let stats = client.stats().unwrap();
    assert_eq!((stats.pending_nodes, stats.pending_edge_ops), (0, 0));
    // The session keeps answering correctly on the compacted epoch: the
    // served delta equals an uncompacted in-process session's.
    let mut b3 = BatchUpdate::new();
    b3.insert_edge(fake, status, intern("status"));
    let served = client.submit_update(&b3).unwrap();
    assert_eq!(served.done.epoch, 1);
    let snapshot = graph.freeze();
    let mut reference = ngd_detect::IncrementalSession::new(&snapshot);
    let config = DetectorConfig::default();
    for b in [&b1, &b2] {
        reference.apply(&sigma, b, &config).unwrap();
    }
    let expected = reference.apply(&sigma, &b3, &config).unwrap();
    assert_eq!(
        served.delta, expected.delta,
        "delta survives the epoch switch"
    );

    client.shutdown_server().unwrap();
    drop(client);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}

/// The `METRICS` frame round-trips the daemon's live registry snapshot:
/// after one update and one query the snapshot must carry the per-frame
/// counters and latency histograms, the plan-cache counters, the session
/// gauge and the byte counters — and render as Prometheus text.  Also
/// exercises `ServeOptions::metrics_dump`: the daemon leaves a parseable
/// JSON snapshot behind on shutdown.
#[test]
fn metrics_frame_reports_live_registry_and_dump_file_is_written() {
    use ngd_serve::ServeOptions;
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("metrics.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let dump_path = temp_path("metrics-dump.json");

    let server = Server::start_with(
        SnapshotStore::open(&snap_path).unwrap(),
        sigma,
        &ServeAddr::Unix(temp_path("metrics-sock")),
        DetectorConfig::with_processors(2),
        ServeOptions {
            metrics_dump: Some(dump_path.clone()),
            metrics_interval: Some(std::time::Duration::from_secs(3600)),
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut delta = BatchUpdate::new();
    delta.delete_edge(fake, status, intern("status"));
    client.submit_update(&delta).unwrap();
    client.query().unwrap();

    let snapshot = client.metrics().expect("METRICS round-trips");

    // Per-frame accounting: the frames this very session sent so far.
    for kind in ["hello", "update", "query"] {
        let count = snapshot.counter(&format!("serve.frame.{kind}.count"));
        assert!(
            count.is_some_and(|n| n >= 1),
            "serve.frame.{kind}.count missing or zero: {count:?}"
        );
        let latency = snapshot.histogram(&format!("serve.frame.{kind}.latency_ns"));
        assert!(
            latency.is_some_and(|h| h.count >= 1),
            "serve.frame.{kind}.latency_ns missing or empty"
        );
    }
    // The METRICS frame itself counts before the snapshot is taken.
    assert!(snapshot
        .counter("serve.frame.metrics.count")
        .is_some_and(|n| n >= 1));

    // Session and transport accounting.
    assert!(snapshot
        .gauge("serve.sessions.active")
        .is_some_and(|n| n >= 1));
    assert!(snapshot.counter("serve.bytes.in").is_some_and(|n| n > 0));
    assert!(snapshot.counter("serve.bytes.out").is_some_and(|n| n > 0));

    // The detection run behind the update/query folded its telemetry.
    assert!(snapshot
        .counter("matcher.plan_cache.misses")
        .is_some_and(|n| n >= 1));
    assert!(snapshot
        .counter("matcher.search.expanded")
        .is_some_and(|n| n >= 1));
    assert!(snapshot
        .histogram("detect.batch.run_ns")
        .is_some_and(|h| h.count >= 1));
    assert!(snapshot
        .histogram("detect.delta.run_ns")
        .is_some_and(|h| h.count >= 1));

    // The snapshot renders as Prometheus text with mangled names.
    let prom = ngd_obs::render_prometheus(&snapshot);
    assert!(prom.contains("# TYPE ngd_serve_frame_update_count counter"));
    assert!(prom.contains("ngd_serve_frame_update_latency_ns_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("# TYPE ngd_serve_sessions_active gauge"));

    client.shutdown_server().unwrap();
    drop(client);
    server.wait();

    // The dump thread wrote a final snapshot on shutdown.
    let dumped = std::fs::read_to_string(&dump_path).expect("dump file exists");
    let parsed: ngd_obs::MetricsSnapshot =
        ngd_json::from_str(&dumped).expect("dump file is a JSON snapshot");
    assert!(parsed
        .counter("serve.frame.update.count")
        .is_some_and(|n| n >= 1));

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&dump_path).ok();
}

/// Concurrent sessions across a node-adding compaction: an edge-only
/// observer must re-root onto the grown epoch and keep answering, while
/// an observer whose own added nodes collide with the published epoch's
/// must stay pinned to its old mapping — never silently adopt foreign
/// nodes — and also keep answering correctly.
#[test]
fn node_adding_compaction_reroots_edge_only_sessions_and_pins_conflicting_ones() {
    use ngd_graph::AttrMap;
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("node-add.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    let server = Server::start(
        SnapshotStore::open(&snap_path).unwrap(),
        sigma.clone(),
        &ServeAddr::Unix(temp_path("node-add-sock")),
        DetectorConfig::default(),
    )
    .expect("server starts");

    let company = graph.nodes_with_label(intern("company"))[0];
    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();

    // Session A: edge-only overlay.
    let mut edge_only = ServeClient::connect(server.local_addr()).unwrap();
    let mut a1 = BatchUpdate::new();
    a1.delete_edge(fake, status, intern("status"));
    edge_only.submit_update(&a1).unwrap();

    // Session B: adds a node with label "account"; its view must never be
    // affected by C's compaction of a *different* node at the same id.
    let mut conflicting = ServeClient::connect(server.local_addr()).unwrap();
    let mut b1 = BatchUpdate::new();
    let b_node = b1.add_node(graph.node_count(), intern("account"), AttrMap::new());
    b1.insert_edge(b_node, company, intern("keys"));
    conflicting.submit_update(&b1).unwrap();
    let b_view_before = conflicting.query().unwrap().violations;

    // Session C compacts an overlay that adds one "boolean" node — the
    // same *count* as B's added nodes, different content.
    let mut compactor = ServeClient::connect(server.local_addr()).unwrap();
    let mut c1 = BatchUpdate::new();
    let c_node = c1.add_node(graph.node_count(), intern("boolean"), AttrMap::new());
    c1.insert_edge(fake, c_node, intern("follower"));
    compactor.submit_update(&c1).unwrap();
    let epoch = compactor.compact().expect("compaction publishes");
    assert_eq!(epoch.published_epoch, 1);

    // A (edge-only) re-roots onto the grown epoch and keeps its residue.
    let stats = edge_only.stats().unwrap();
    assert_eq!(stats.epoch, 1, "edge-only session re-roots");
    let notice = edge_only.last_epoch_switch().expect("switch announced");
    assert_eq!((notice.epoch, notice.previous_epoch), (1, 0));
    assert_eq!(notice.carried_nodes, 0);
    assert!(notice.carried_ops >= 1, "the deletion residue carries");

    // B stays pinned: published epoch moved on, B's epoch did not, and
    // B's view is unchanged (its node keeps its identity).
    let stats = conflicting.stats().unwrap();
    assert_eq!(stats.epoch, 0, "conflicting session pins to its mapping");
    assert_eq!(stats.published_epoch, 1);
    assert_eq!(
        conflicting.query().unwrap().violations,
        b_view_before,
        "a pinned session's state must be untouched by the foreign epoch"
    );

    edge_only.shutdown_server().unwrap();
    drop(edge_only);
    drop(conflicting);
    drop(compactor);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}
