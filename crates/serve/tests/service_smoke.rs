//! Service smoke test: a daemon over a Unix-domain socket serving
//! concurrent sessions, session isolation, rule swaps, reset and graceful
//! shutdown.  (The full per-scenario byte-identity battery lives in the
//! workspace integration tests, `tests/serve_equivalence.rs`.)

#![cfg(unix)]

use ngd_core::{paper, RuleSet};
use ngd_detect::{pinc_dect, DetectorConfig};
use ngd_graph::persist::SnapshotWriter;
use ngd_graph::{intern, BatchUpdate, PartitionStrategy};
use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ngd-smoke-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn unix_socket_daemon_serves_concurrent_sessions_byte_identically() {
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("snap.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");

    let sock_path = temp_path("sock");
    let server = Server::start(
        SnapshotStore::open(&snap_path).expect("snapshot maps"),
        sigma.clone(),
        &ServeAddr::Unix(sock_path.clone()),
        DetectorConfig::with_processors(2),
    )
    .expect("server starts on a unix socket");
    let addr = server.local_addr().clone();

    // The batch every session submits: delete the fake account's status
    // edge (removes the figure-1 violation).
    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut delta = BatchUpdate::new();
    delta.delete_edge(fake, status, intern("status"));

    let reference = pinc_dect(&sigma, &graph, &delta, &DetectorConfig::with_processors(2));

    // Three concurrent sessions, each with its own overlay over the one
    // shared mapping; all must get the byte-identical answer.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                let delta = delta.clone();
                let expected = reference.delta.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect_as(&addr, &format!("smoke-{i}")).unwrap();
                    let served = client.submit_update(&delta).unwrap();
                    assert_eq!(served.delta, expected, "session {i}");
                    assert_eq!(
                        ngd_json::to_string(&served.delta),
                        ngd_json::to_string(&expected),
                        "session {i}: serialized deltas differ"
                    );
                    // Sessions are isolated: each accumulated exactly one op.
                    let stats = client.stats().unwrap();
                    assert_eq!(stats.accumulated_ops, 1, "session {i}");
                    assert_eq!(stats.batches_applied, 1, "session {i}");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("session thread");
        }
    });

    // Server-wide counters saw all three sessions.
    let mut client = ServeClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.updates_served, 3);
    assert!(stats.sessions_total >= 4);
    assert_eq!(stats.violations_streamed, 3 * reference.delta.len() as u64);

    // Reset + re-submit on a fresh session: same answer again.
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);
    client.reset().unwrap();
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);

    client.shutdown_server().unwrap();
    assert!(server.is_shutting_down());
    drop(client);
    server.wait();
    assert!(!sock_path.exists(), "socket file is cleaned up");
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn sharded_snapshots_serve_with_per_fragment_workers_and_report_remote_fetches() {
    let (graph, fake) = paper::figure1_g4();
    let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
    let snap_path = temp_path("sharded.ngds");
    // Halo 0 forces cross-fragment candidate fetches, which must surface in
    // the served cost ledger.
    let sharded = graph.freeze_sharded(3, PartitionStrategy::EdgeCut, 0);
    SnapshotWriter::new()
        .write_sharded(&sharded, &snap_path)
        .expect("sharded snapshot writes");

    let server = Server::start(
        SnapshotStore::open(&snap_path).expect("auto-detects the sharded kind"),
        sigma.clone(),
        &ServeAddr::Unix(temp_path("sharded-sock")),
        DetectorConfig::default(),
    )
    .expect("server starts");

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.server_info().fragment_count, 3);

    let status = graph
        .out_neighbors(fake)
        .iter()
        .find(|&&(_, l)| l == intern("status"))
        .map(|&(n, _)| n)
        .unwrap();
    let mut delta = BatchUpdate::new();
    delta.delete_edge(fake, status, intern("status"));

    let reference = pinc_dect(&sigma, &graph, &delta, &DetectorConfig::default());
    let served = client.submit_update(&delta).unwrap();
    assert_eq!(served.delta, reference.delta);
    assert_eq!(served.done.algorithm, "PIncDect (sharded)");
    assert_eq!(served.done.processors, 3);
    assert!(
        served.done.cost.remote_fetches > 0,
        "halo-0 sharding must pay (and report) cross-fragment fetches"
    );

    client.shutdown_server().unwrap();
    drop(client);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn session_rule_swap_changes_answers_for_that_session_only() {
    let (graph, _) = paper::figure1_g2();
    let snap_path = temp_path("rules.ngds");
    SnapshotWriter::new()
        .write(&graph.freeze(), &snap_path)
        .expect("snapshot writes");
    // Default rules: φ2 only (one violation on G2).
    let server = Server::start(
        SnapshotStore::open(&snap_path).unwrap(),
        RuleSet::from_rules(vec![paper::phi2()]),
        &ServeAddr::Unix(temp_path("rules-sock")),
        DetectorConfig::with_processors(2),
    )
    .unwrap();

    let mut swapped = ServeClient::connect(server.local_addr()).unwrap();
    let mut vanilla = ServeClient::connect(server.local_addr()).unwrap();

    // Swap session A to a rule set with zero matches on G2.
    let message = swapped
        .set_rules(&RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]))
        .unwrap();
    assert!(message.contains("1 rule"), "{message}");
    assert_eq!(swapped.query().unwrap().violations.len(), 0);
    // Session B keeps the server default.
    assert_eq!(vanilla.query().unwrap().violations.len(), 1);

    vanilla.shutdown_server().unwrap();
    drop(vanilla);
    drop(swapped);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
}
