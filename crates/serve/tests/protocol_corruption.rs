//! Protocol corruption battery.
//!
//! Every way a frame can be damaged, stale or hostile must surface as a
//! *distinct typed* [`ProtocolError`] — never a panic, never a giant
//! allocation, never silent acceptance.  Mirrors the snapshot format's
//! corruption battery (`tests/persist_format.rs`), with the additional
//! transport modes a socket has: mid-stream disconnects and a live server
//! fed garbage.

use ngd_serve::protocol::{
    frame, read_frame, write_frame, HelloRequest, UpdateRequest, VioChunk, FRAME_HEADER_LEN,
    MAX_FRAME_LEN, WIRE_VERSION,
};
use ngd_serve::ProtocolError;
use std::io::Cursor;

/// One well-formed HELLO frame as bytes.
fn good_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    let hello = HelloRequest {
        client: "corruption-battery".into(),
    };
    write_frame(&mut buf, frame::HELLO, &hello.encode()).unwrap();
    buf
}

#[test]
fn clean_eof_between_frames_is_disconnected() {
    let mut cursor = Cursor::new(Vec::<u8>::new());
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Disconnected));
}

#[test]
fn every_header_truncation_is_typed() {
    let bytes = good_frame();
    for cut in 1..FRAME_HEADER_LEN {
        let mut cursor = Cursor::new(bytes[..cut].to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(ProtocolError::Truncated {
                expected: FRAME_HEADER_LEN as u64,
                actual: cut as u64,
            }),
            "header cut at {cut}"
        );
    }
}

#[test]
fn every_payload_truncation_is_typed() {
    let bytes = good_frame();
    for cut in FRAME_HEADER_LEN..bytes.len() {
        let mut cursor = Cursor::new(bytes[..cut].to_vec());
        match read_frame(&mut cursor) {
            Err(ProtocolError::Truncated { expected, actual }) => {
                assert_eq!(expected, bytes.len() as u64, "payload cut at {cut}");
                assert_eq!(actual, cut as u64);
            }
            other => panic!("payload cut at {cut}: {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected_with_the_found_bytes() {
    let mut bytes = good_frame();
    bytes[0..8].copy_from_slice(b"HTTP/1.1");
    let mut cursor = Cursor::new(bytes);
    assert_eq!(
        read_frame(&mut cursor),
        Err(ProtocolError::BadMagic {
            found: *b"HTTP/1.1"
        })
    );
}

#[test]
fn future_versions_are_rejected_with_both_versions() {
    let mut bytes = good_frame();
    bytes[8..12].copy_from_slice(&(WIRE_VERSION + 7).to_le_bytes());
    let mut cursor = Cursor::new(bytes);
    assert_eq!(
        read_frame(&mut cursor),
        Err(ProtocolError::UnsupportedVersion {
            found: WIRE_VERSION + 7,
            supported: WIRE_VERSION,
        })
    );
}

#[test]
fn oversized_length_prefix_fails_before_allocation() {
    // Claim a payload far beyond the ceiling; the reader must refuse on the
    // length field alone (this test would OOM otherwise).
    let mut bytes = good_frame();
    bytes[16..24].copy_from_slice(&(1u64 << 56).to_le_bytes());
    let mut cursor = Cursor::new(bytes);
    assert_eq!(
        read_frame(&mut cursor),
        Err(ProtocolError::Oversized {
            len: 1u64 << 56,
            max: MAX_FRAME_LEN,
        })
    );
}

#[test]
fn every_single_flipped_payload_bit_is_caught_by_the_checksum() {
    let bytes = good_frame();
    for bit in 0..(bytes.len() - FRAME_HEADER_LEN) * 8 {
        let mut damaged = bytes.clone();
        damaged[FRAME_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
        let mut cursor = Cursor::new(damaged);
        assert!(
            matches!(
                read_frame(&mut cursor),
                Err(ProtocolError::ChecksumMismatch { .. })
            ),
            "flipped payload bit {bit} escaped the checksum"
        );
    }
}

#[test]
fn a_checksum_correct_but_structurally_damaged_payload_is_corrupt() {
    // Valid frame whose payload is one byte short for its own length
    // prefix: framing accepts it, the payload decoder must reject it.
    let mut payload = Vec::new();
    payload.extend_from_slice(&100u32.to_le_bytes()); // string length 100 …
    payload.extend_from_slice(b"short"); // … but only 5 bytes follow
    let mut buf = Vec::new();
    write_frame(&mut buf, frame::HELLO, &payload).unwrap();
    let mut cursor = Cursor::new(buf);
    let (kind, payload) = read_frame(&mut cursor).unwrap();
    assert_eq!(kind, frame::HELLO);
    assert!(matches!(
        HelloRequest::decode(&payload),
        Err(ProtocolError::Corrupt(_))
    ));
}

#[test]
fn trailing_garbage_after_a_message_is_corrupt() {
    let hello = HelloRequest { client: "x".into() };
    let mut payload = hello.encode();
    payload.push(0xAB);
    assert!(matches!(
        HelloRequest::decode(&payload),
        Err(ProtocolError::Corrupt(_))
    ));
}

#[test]
fn crafted_record_counts_fail_typed_not_oom() {
    // An UpdateRequest claiming u32::MAX new nodes in a tiny payload.
    let mut payload = Vec::new();
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        UpdateRequest::decode(&payload),
        Err(ProtocolError::Corrupt(_))
    ));
    // A VioChunk claiming u32::MAX violations.
    let mut payload = vec![0u8];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        VioChunk::decode(&payload),
        Err(ProtocolError::Corrupt(_))
    ));
}

#[test]
fn unknown_value_and_side_tags_are_corrupt() {
    // VioChunk side tag 9.
    let mut payload = vec![9u8];
    payload.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        VioChunk::decode(&payload),
        Err(ProtocolError::Corrupt(_))
    ));
}

/// The live-transport half of the battery: a real server fed each damage
/// mode must answer with a typed `ERROR` frame (or close), never panic,
/// and keep serving well-formed peers afterwards.
mod live_server {
    use super::*;
    use ngd_core::{paper, RuleSet};
    use ngd_detect::DetectorConfig;
    use ngd_graph::persist::SnapshotWriter;
    use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn start_server() -> (Server, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "ngd-corrupt-{}-{:?}.ngds",
            std::process::id(),
            std::thread::current().id()
        ));
        let (graph, _) = paper::figure1_g4();
        SnapshotWriter::new()
            .write(&graph.freeze(), &path)
            .expect("snapshot writes");
        let server = Server::start(
            SnapshotStore::open(&path).expect("snapshot maps"),
            RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]),
            &ServeAddr::Tcp("127.0.0.1:0".into()),
            DetectorConfig::with_processors(2),
        )
        .expect("server starts");
        (server, path)
    }

    fn tcp_addr(server: &Server) -> String {
        match server.local_addr() {
            ServeAddr::Tcp(spec) => spec.clone(),
            other => panic!("expected tcp, got {other}"),
        }
    }

    #[test]
    fn garbage_and_mid_stream_disconnects_do_not_kill_the_server() {
        let (server, path) = start_server();
        let addr = tcp_addr(&server);

        // 1: raw garbage — server answers ERROR and closes.
        {
            let mut raw = TcpStream::connect(&addr).unwrap();
            raw.write_all(b"GET / HTTP/1.1\r\n\r\n".as_slice()).unwrap();
            raw.write_all(&[0u8; 64]).unwrap();
            // Either an ERROR frame arrives or the connection closes; both
            // are acceptable — what matters is the server survives.
            let mut sink = Vec::new();
            let _ = raw.read_to_end(&mut sink);
        }

        // 2: a clean header, then a mid-payload hangup.
        {
            let mut raw = TcpStream::connect(&addr).unwrap();
            let hello = HelloRequest {
                client: "will hang up".into(),
            }
            .encode();
            let mut framed = Vec::new();
            write_frame(&mut framed, frame::HELLO, &hello).unwrap();
            raw.write_all(&framed[..framed.len() - 3]).unwrap();
            drop(raw); // mid-stream disconnect
        }

        // 3: a well-formed client still gets served afterwards.
        let addr = ServeAddr::Tcp(addr);
        let mut client = ServeClient::connect(&addr).expect("server still accepts");
        let stats = client.stats().expect("server still answers");
        assert!(stats.snapshot_nodes > 0);
        client.shutdown_server().unwrap();
        drop(client);
        server.wait();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_rejected_batch_is_a_typed_remote_error_and_the_session_survives() {
        let (server, path) = start_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();

        // Delete an edge that does not exist: server must answer with a
        // typed UPDATE_REJECTED error, not a panic, and keep the session.
        let mut bad = ngd_graph::BatchUpdate::new();
        bad.delete_edge(
            ngd_graph::NodeId(0),
            ngd_graph::NodeId(1),
            ngd_graph::intern("no-such-edge"),
        );
        match client.submit_update(&bad) {
            Err(ProtocolError::Remote { code, message }) => {
                assert_eq!(code, ngd_serve::protocol::err_code::UPDATE_REJECTED);
                assert!(message.contains("missing"), "{message}");
            }
            other => panic!("expected a typed remote error, got {other:?}"),
        }
        // The same session still answers queries.
        let query = client.query().expect("session survives a rejected batch");
        assert_eq!(query.violations.len(), 1);

        client.shutdown_server().unwrap();
        drop(client);
        server.wait();
        std::fs::remove_file(&path).ok();
    }
}
