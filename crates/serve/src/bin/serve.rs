//! `ngd-serve` — the detection daemon.
//!
//! ```text
//! ngd-serve --snapshot graph.ngds [--listen unix:/run/ngd.sock | tcp:127.0.0.1:7411]
//!           [--rules rules.json|rules.ngd] [--processors N] [--latency C]
//!           [--compact-after OPS] [--metrics-dump FILE] [--metrics-interval SECS]
//! ```
//!
//! Maps the snapshot (shared or sharded — auto-detected), compiles the
//! rule set (a JSON file produced by `RuleSet::to_json`, or the text DSL
//! understood by `ngd_core::parse_rule_set`; defaults to the paper's rule
//! set), binds the listener and serves until a client sends `SHUTDOWN`.
//! With `--compact-after N`, a session whose accumulated update reaches
//! `N` unit operations triggers a background compaction: the overlay is
//! folded into a fresh `.ngds` epoch next to the original snapshot and
//! every session re-roots onto it at its next message boundary.

use ngd_core::RuleSet;
use ngd_detect::DetectorConfig;
use ngd_serve::{ServeAddr, ServeOptions, Server, SnapshotStore};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    snapshot: PathBuf,
    listen: ServeAddr,
    rules: Option<PathBuf>,
    processors: Option<usize>,
    latency: Option<f64>,
    compact_after: Option<u64>,
    metrics_dump: Option<PathBuf>,
    metrics_interval: Option<u64>,
    workers: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ngd-serve --snapshot <file.ngds> [--listen unix:<path>|tcp:<host>:<port>]\n\
         \x20                [--rules <file>] [--processors <n>] [--latency <C>]\n\
         \x20                [--compact-after <ops>] [--workers <n>]\n\
         \x20                [--metrics-dump <file.json>] [--metrics-interval <secs>]\n\
         \n\
         Serves incremental NGD violation detection over a memory-mapped\n\
         snapshot until a client sends SHUTDOWN (`ngd-cli shutdown`).\n\
         With --metrics-dump, the daemon rewrites <file.json> with a\n\
         metrics-registry snapshot every --metrics-interval seconds\n\
         (default 30) and once more on shutdown."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut snapshot: Option<PathBuf> = None;
    let mut listen = ServeAddr::Tcp("127.0.0.1:7411".into());
    let mut rules = None;
    let mut processors = None;
    let mut latency = None;
    let mut compact_after = None;
    let mut metrics_dump = None;
    let mut metrics_interval = None;
    let mut workers = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value("--snapshot"))),
            "--listen" => match ServeAddr::parse(&value("--listen")) {
                Ok(addr) => listen = addr,
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--rules" => rules = Some(PathBuf::from(value("--rules"))),
            "--processors" => match value("--processors").parse() {
                Ok(n) => processors = Some(n),
                Err(_) => usage(),
            },
            "--latency" => match value("--latency").parse() {
                Ok(c) => latency = Some(c),
                Err(_) => usage(),
            },
            "--compact-after" => match value("--compact-after").parse() {
                Ok(n) => compact_after = Some(n),
                Err(_) => usage(),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) => workers = Some(n),
                Err(_) => usage(),
            },
            "--metrics-dump" => metrics_dump = Some(PathBuf::from(value("--metrics-dump"))),
            "--metrics-interval" => match value("--metrics-interval").parse() {
                Ok(secs) => metrics_interval = Some(secs),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    let Some(snapshot) = snapshot else {
        eprintln!("--snapshot is required");
        usage()
    };
    Args {
        snapshot,
        listen,
        rules,
        processors,
        latency,
        compact_after,
        metrics_dump,
        metrics_interval,
        workers,
    }
}

/// Load a rules file in any supported format (`.ngdl`, legacy DSL or
/// JSON); `ngd_lang::load_rules` sniffs which parser applies.
fn load_rules(path: &PathBuf) -> Result<RuleSet, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    ngd_lang::load_rules(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = parse_args();

    let store = match SnapshotStore::open(&args.snapshot) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("ngd-serve: cannot map {}: {e}", args.snapshot.display());
            return ExitCode::FAILURE;
        }
    };

    let sigma = match &args.rules {
        Some(path) => match load_rules(path) {
            Ok(sigma) => sigma,
            Err(e) => {
                eprintln!("ngd-serve: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => ngd_core::paper::paper_rule_set(),
    };

    let mut detector = DetectorConfig::default();
    if let Some(p) = args.processors {
        detector.processors = p.max(1);
    }
    if let Some(c) = args.latency {
        detector.latency_c = c;
    }

    println!(
        "ngd-serve: snapshot {} ({} nodes, {} edges, {}), ‖Σ‖ = {} (dΣ = {})",
        args.snapshot.display(),
        store.node_count(),
        store.edge_count(),
        match store.fragment_count() {
            0 => "shared".to_string(),
            n => format!("{n} fragments"),
        },
        sigma.len(),
        sigma.diameter(),
    );

    let options = ServeOptions {
        compact_after: args.compact_after,
        metrics_dump: args.metrics_dump.clone(),
        metrics_interval: args.metrics_interval.map(std::time::Duration::from_secs),
        worker_threads: args.workers,
        write_buffer_limit: None,
    };
    let server = match Server::start_with(store, sigma, &args.listen, detector, options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ngd-serve: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("ngd-serve: listening on {}", server.local_addr());
    server.wait();
    println!("ngd-serve: shut down");
    ExitCode::SUCCESS
}
