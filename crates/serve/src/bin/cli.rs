//! `ngd-cli` — the operator client for a running `ngd-serve` daemon.
//!
//! ```text
//! ngd-cli [--connect unix:<path>|tcp:<host>:<port>] <command>
//!
//! commands:
//!   load <graph.json> <out.ngds>  freeze a graph JSON into a snapshot file
//!                                 (offline; what the daemon serves)
//!   compact <in.ngds> <out.ngds> [delta.json]
//!                                 offline: merge an optional ΔG batch into a
//!                                 snapshot file, stamping the next epoch
//!   compact                       online: ask the daemon to fold this
//!                                 session's accumulated ΔG into a new epoch
//!                                 and publish it to every session
//!   epoch                         session + server snapshot epochs
//!   update <batch.json>           submit a ΔG batch, stream ΔVio back
//!   query                         full detection over the session state
//!   rules <file>                  install a session rule set (.ngdl, JSON
//!                                 or legacy DSL — the format is sniffed)
//!   check <rules> [snap]          offline: parse + lower a rule file,
//!                                 report each rule (pattern size, literal
//!                                 counts, denial?) and its compiled match
//!                                 plan; parse errors print a caret snippet
//!                                 and exit nonzero
//!   explain <rules> [snap] [id]   offline: compile each rule (or just `id`)
//!                                 against a snapshot (or empty statistics)
//!                                 and print its match plan — seed choice,
//!                                 variable order, per-step cost estimates
//!   stats                         server + session statistics
//!   metrics [--format prom|json]  dump the daemon's metrics registry —
//!                                 every counter, gauge and histogram —
//!                                 as Prometheus text (default) or JSON
//!   top [interval [count]]        live dashboard: refresh every
//!                                 `interval` seconds (default 2),
//!                                 showing per-frame request rates and
//!                                 latencies, plan-cache hit rate and
//!                                 session/byte counters; `count` ticks
//!                                 then exit (default: until Ctrl-C)
//!   reset                         drop the session's accumulated ΔG
//!   shutdown                      stop the daemon gracefully
//! ```
//!
//! Sessions live as long as their connection: each `ngd-cli` invocation
//! opens a fresh one, so a batch accumulates only within that invocation
//! (the `update` command streams the batch's own `ΔVio` before exiting).
//! Long-lived sessions that absorb many batches are the [`ServeClient`]
//! library's job — keep one client connected and keep submitting.

use ngd_core::RuleSet;
use ngd_graph::persist::{CompactionWriter, MmapShardedSnapshot, MmapSnapshot, SnapshotWriter};
use ngd_graph::{BatchUpdate, GraphView, PersistError};
use ngd_match::compile_plan;
use ngd_serve::{ServeAddr, ServeClient, Side};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: ngd-cli [--connect unix:<path>|tcp:<host>:<port>] <command>\n\
         commands: load <graph.json> <out.ngds> |\n\
         \x20         compact [<in.ngds> <out.ngds> [delta.json]] | epoch |\n\
         \x20         update <batch.json> | query |\n\
         \x20         rules <file> | check <rules> [<snapshot.ngds>] |\n\
         \x20         explain <rules> [<snapshot.ngds>] [<rule-id>] |\n\
         \x20         stats | metrics [--format prom|json] |\n\
         \x20         top [<interval-secs> [<count>]] | reset | shutdown"
    );
    std::process::exit(2);
}

fn fail(message: String) -> ExitCode {
    eprintln!("ngd-cli: {message}");
    ExitCode::FAILURE
}

fn connect(addr: &ServeAddr) -> Result<ServeClient, String> {
    ServeClient::connect_as(addr, "ngd-cli").map_err(|e| format!("connect {addr}: {e}"))
}

/// Plan-cache effectiveness as a percentage string (`"98.2%"`), or `"—"`
/// before the cache has been consulted at all.
fn hit_rate(hits: u64, misses: u64) -> String {
    match hits + misses {
        0 => "—".to_string(),
        total => format!("{:.1}%", 100.0 * hits as f64 / total as f64),
    }
}

/// A nanosecond quantity as a humane duration (`1.2ms`, `840µs`).
fn fmt_ns(ns: u64) -> String {
    format!("{:?}", std::time::Duration::from_nanos(ns))
}

/// The per-second rate of counter `name` between two snapshots taken
/// `elapsed` apart (0.0 on the first tick, when there is no `prev`).
fn counter_rate(
    prev: Option<&ngd_obs::MetricsSnapshot>,
    cur: &ngd_obs::MetricsSnapshot,
    name: &str,
    elapsed: std::time::Duration,
) -> f64 {
    let Some(prev) = prev else { return 0.0 };
    let before = prev.counter(name).unwrap_or(0);
    let after = cur.counter(name).unwrap_or(0);
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        after.saturating_sub(before) as f64 / secs
    }
}

/// One `top` refresh: rates are counter deltas against the previous
/// snapshot, latencies are lifetime histogram quantiles.
fn print_top_tick(
    server: &str,
    stats: &ngd_serve::StatsResponse,
    prev: Option<&ngd_obs::MetricsSnapshot>,
    cur: &ngd_obs::MetricsSnapshot,
    elapsed: std::time::Duration,
) {
    println!(
        "ngd-top @ {server} — uptime {}s, epoch {}, {} active / {} total session(s)",
        stats.uptime_secs, stats.published_epoch, stats.sessions_active, stats.sessions_total,
    );
    println!(
        "  bytes      : in {:.1}/s, out {:.1}/s ({} in / {} out total)",
        counter_rate(prev, cur, "serve.bytes.in", elapsed),
        counter_rate(prev, cur, "serve.bytes.out", elapsed),
        cur.counter("serve.bytes.in").unwrap_or(0),
        cur.counter("serve.bytes.out").unwrap_or(0),
    );
    println!(
        "  reactor    : {:.1} iter/s, {:.1} ready/s, queue depth {}, {} backpressure stall(s)",
        counter_rate(prev, cur, "serve.loop.iterations", elapsed),
        counter_rate(prev, cur, "serve.loop.ready_events", elapsed),
        cur.gauge("serve.queue.depth").unwrap_or(0),
        cur.counter("serve.backpressure.stalls").unwrap_or(0),
    );
    if let Some(first) = cur.histogram("serve.first_vio.ns") {
        println!(
            "  first vio  : {} streamed answer(s), p50 {} / p95 {} to first violation",
            first.count,
            fmt_ns(first.p50()),
            fmt_ns(first.p95()),
        );
    }
    println!(
        "  plan cache : {} hit rate ({} hit(s), {} miss(es))",
        hit_rate(stats.plan_cache_hits, stats.plan_cache_misses),
        stats.plan_cache_hits,
        stats.plan_cache_misses,
    );
    if let Some(runs) = cur.histogram("detect.batch.run_ns") {
        println!(
            "  detect     : {} batch run(s), p50 {} / p95 {}; {} delta run(s)",
            runs.count,
            fmt_ns(runs.p50()),
            fmt_ns(runs.p95()),
            cur.counter("detect.delta.runs")
                .or_else(|| cur.histogram("detect.delta.run_ns").map(|h| h.count))
                .unwrap_or(0),
        );
    }
    // Per-frame request rates, busiest first; latency quantiles come
    // from the paired `serve.frame.<kind>.latency_ns` histogram.
    let mut frames: Vec<(String, u64, f64)> = cur
        .counters
        .iter()
        .filter_map(|c| {
            let kind = c
                .name
                .strip_prefix("serve.frame.")?
                .strip_suffix(".count")?;
            Some((
                kind.to_string(),
                c.value,
                counter_rate(prev, cur, &c.name, elapsed),
            ))
        })
        .collect();
    frames.sort_by(|a, b| b.2.total_cmp(&a.2).then(b.1.cmp(&a.1)));
    for (kind, total, rate) in frames {
        let latency = cur
            .histogram(&format!("serve.frame.{kind}.latency_ns"))
            .map(|h| format!("p50 {} / p95 {}", fmt_ns(h.p50()), fmt_ns(h.p95())))
            .unwrap_or_else(|| "—".to_string());
        println!("  frame      : {kind:<9} {rate:>7.1}/s  ({total} total, {latency})");
    }
}

/// Parse a rule set in any supported format (`.ngdl`, JSON or the legacy
/// DSL); `ngd_lang::load_rules` sniffs which parser applies.  `.ngdl`
/// errors keep their multi-line caret snippet.
fn parse_rules(text: &str) -> Result<RuleSet, String> {
    ngd_lang::load_rules(text).map_err(|e| e.to_string())
}

/// Does an `explain` positional argument name a snapshot (rather than a
/// rule id)?  Snapshots end in `.ngds`; an existing file of any name also
/// counts so unconventionally named snapshots keep working.
fn looks_like_snapshot(arg: &str) -> bool {
    arg.ends_with(".ngds") || std::path::Path::new(arg).exists()
}

/// Compile and print the match plan of every rule (or just `filter`)
/// against `graph`'s statistics.
fn explain_rules<G: GraphView>(
    sigma: &RuleSet,
    graph: &G,
    filter: Option<&str>,
) -> Result<(), String> {
    let mut found = false;
    for rule in sigma.rules() {
        if filter.is_some_and(|id| id != rule.id) {
            continue;
        }
        found = true;
        let plan = compile_plan(&rule.pattern, graph, &[]);
        println!("{}:", rule.id);
        print!("{}", plan.describe(&rule.pattern));
    }
    match filter {
        Some(id) if !found => Err(format!("no rule `{id}` in the rule set")),
        _ => Ok(()),
    }
}

/// Describe every rule (pattern size, literal counts, denial flag) and
/// its compiled match plan against `graph`'s statistics.
fn check_rules<G: GraphView>(sigma: &RuleSet, graph: &G) -> Result<(), String> {
    for rule in sigma.rules() {
        let kind = if ngd_lang::is_denial(rule) {
            " [denial]"
        } else {
            ""
        };
        println!(
            "{}: {} node(s), {} edge(s), {} premise / {} consequence literal(s){kind}",
            rule.id,
            rule.pattern.node_count(),
            rule.pattern.edge_count(),
            rule.premise.len(),
            rule.consequence.len(),
        );
        let plan = compile_plan(&rule.pattern, graph, &[]);
        print!("{}", plan.describe(&rule.pattern));
    }
    Ok(())
}

/// A plan-printing action runnable against any snapshot's `GraphView`
/// (shared or sharded) — the closure shape `with_snapshot_stats` needs,
/// as a trait because `GraphView` takes the view by generic parameter.
trait PlanAction {
    fn run<G: GraphView>(self, graph: &G) -> Result<(), String>;
}

struct ExplainAction<'a> {
    sigma: &'a RuleSet,
    filter: Option<&'a str>,
}

impl PlanAction for ExplainAction<'_> {
    fn run<G: GraphView>(self, graph: &G) -> Result<(), String> {
        explain_rules(self.sigma, graph, self.filter)
    }
}

struct CheckAction<'a> {
    sigma: &'a RuleSet,
}

impl PlanAction for CheckAction<'_> {
    fn run<G: GraphView>(self, graph: &G) -> Result<(), String> {
        check_rules(self.sigma, graph)
    }
}

/// Load `snap_path` (shared or sharded), print a header with its
/// statistics, and run `action` against its graph view.
fn with_snapshot_stats<A: PlanAction>(snap_path: &str, action: A) -> Result<(), String> {
    let path = std::path::Path::new(snap_path);
    match MmapSnapshot::load(path) {
        Ok(snapshot) => {
            println!(
                "plans over {snap_path} (epoch {}, {} nodes, {} edges):",
                snapshot.epoch(),
                GraphView::node_count(&snapshot),
                GraphView::edge_count(&snapshot),
            );
            action.run(&snapshot)
        }
        Err(PersistError::WrongKind { .. }) => match MmapShardedSnapshot::load(path) {
            Ok(sharded) => {
                println!(
                    "plans over {snap_path} (epoch {}, {} fragments):",
                    sharded.epoch(),
                    sharded.fragment_count(),
                );
                action.run(sharded.global())
            }
            Err(e) => Err(format!("load {snap_path}: {e}")),
        },
        Err(e) => Err(format!("load {snap_path}: {e}")),
    }
}

fn main() -> ExitCode {
    let mut addr = ServeAddr::Tcp("127.0.0.1:7411".into());
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next().as_deref().map(ServeAddr::parse) {
                Some(Ok(parsed)) => addr = parsed,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let Some(command) = rest.first().map(String::as_str) else {
        usage()
    };

    match command {
        // Offline: graph file -> frozen snapshot file (no daemon involved).
        // Accepts the JSON round-trip form (leading `{`) or the text
        // edge-list format of `ngd_graph::io` (`N <id> <label> [k=v]...` /
        // `E <src> <dst> <label>` lines).
        "load" => {
            let (Some(graph_path), Some(out_path)) = (rest.get(1), rest.get(2)) else {
                usage()
            };
            let text = match std::fs::read_to_string(graph_path) {
                Ok(text) => text,
                Err(e) => return fail(format!("read {graph_path}: {e}")),
            };
            let parsed = if text.trim_start().starts_with('{') {
                ngd_graph::io::from_json(&text)
            } else {
                ngd_graph::io::from_text(&text)
            };
            let graph = match parsed {
                Ok(graph) => graph,
                Err(e) => return fail(format!("parse {graph_path}: {e}")),
            };
            let snapshot = graph.freeze();
            match SnapshotWriter::new().write(&snapshot, std::path::Path::new(out_path)) {
                Ok(bytes) => {
                    println!(
                        "froze {} nodes / {} edges into {out_path} ({bytes} bytes)",
                        graph.node_count(),
                        graph.edge_count()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("write {out_path}: {e}")),
            }
        }
        // Offline with paths; online (trigger the daemon) without.
        "compact" => match (rest.get(1), rest.get(2)) {
            (Some(in_path), Some(out_path)) => {
                let delta = match rest.get(3) {
                    Some(delta_path) => {
                        let text = match std::fs::read_to_string(delta_path) {
                            Ok(text) => text,
                            Err(e) => return fail(format!("read {delta_path}: {e}")),
                        };
                        match ngd_json::from_str(&text) {
                            Ok(batch) => batch,
                            Err(e) => return fail(format!("parse {delta_path}: {e}")),
                        }
                    }
                    None => BatchUpdate::new(),
                };
                match CompactionWriter::new().compact_file(
                    std::path::Path::new(in_path),
                    &delta,
                    std::path::Path::new(out_path),
                ) {
                    Ok(report) => {
                        println!(
                            "compacted {in_path} ⊕ {} unit update(s) into {out_path}: \
                             epoch {}, {} nodes, {} edges, {} bytes{}",
                            delta.len(),
                            report.epoch,
                            report.node_count,
                            report.edge_count,
                            report.bytes,
                            if report.sharded {
                                format!(
                                    " (sharded: {} fragment(s) rewritten, {} byte-copied)",
                                    report.fragments_rewritten, report.fragments_copied
                                )
                            } else {
                                String::new()
                            },
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(format!("compact: {e}")),
                }
            }
            (None, _) => {
                let mut client = match connect(&addr) {
                    Ok(client) => client,
                    Err(e) => return fail(e),
                };
                match client.compact() {
                    Ok(response) => {
                        println!(
                            "compacted: now serving epoch {} ({} nodes, {} edges), \
                             {} compaction(s) since startup",
                            response.epoch,
                            response.snapshot_nodes,
                            response.snapshot_edges,
                            response.compactions,
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(format!("compact: {e}")),
                }
            }
            _ => usage(),
        },
        "epoch" => {
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            match client.epoch() {
                Ok(response) => {
                    println!(
                        "session epoch {} / published epoch {} ({} nodes, {} edges), \
                         {} compaction(s) since startup",
                        response.epoch,
                        response.published_epoch,
                        response.snapshot_nodes,
                        response.snapshot_edges,
                        response.compactions,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("epoch: {e}")),
            }
        }
        "update" => {
            let Some(batch_path) = rest.get(1) else {
                usage()
            };
            let text = match std::fs::read_to_string(batch_path) {
                Ok(text) => text,
                Err(e) => return fail(format!("read {batch_path}: {e}")),
            };
            let batch: BatchUpdate = match ngd_json::from_str(&text) {
                Ok(batch) => batch,
                Err(e) => return fail(format!("parse {batch_path}: {e}")),
            };
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            let result = client.submit_update_streaming(&batch, |side, violations| {
                let sign = match side {
                    Side::Added => '+',
                    Side::Removed => '-',
                };
                for violation in violations {
                    println!("{sign} {violation}");
                }
            });
            match result {
                Ok(done) => {
                    println!(
                        "{} @ epoch {}: ΔVio⁺ = {}, ΔVio⁻ = {} in {:?} on {} worker(s), \
                         dΣ-neighbourhood {} nodes [{}]",
                        done.algorithm,
                        done.epoch,
                        done.added_total,
                        done.removed_total,
                        std::time::Duration::from_nanos(done.elapsed_nanos),
                        done.processors,
                        done.neighborhood_nodes,
                        done.cost,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("update: {e}")),
            }
        }
        "query" => {
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            let result = client.query_streaming(|_, violations| {
                for violation in violations {
                    println!("{violation}");
                }
            });
            match result {
                Ok(done) => {
                    println!(
                        "{}: {} violations in {:?} on {} worker(s)",
                        done.algorithm,
                        done.added_total,
                        std::time::Duration::from_nanos(done.elapsed_nanos),
                        done.processors,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("query: {e}")),
            }
        }
        "rules" => {
            let Some(rules_path) = rest.get(1) else {
                usage()
            };
            let text = match std::fs::read_to_string(rules_path) {
                Ok(text) => text,
                Err(e) => return fail(format!("read {rules_path}: {e}")),
            };
            // Validate locally for a good error message (with caret
            // snippet for .ngdl), then ship the raw source — the server
            // re-sniffs and compiles it, so any accepted format works
            // over the wire unchanged.
            if let Err(e) = parse_rules(&text) {
                return fail(format!("parse {rules_path}: {e}"));
            }
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            match client.set_rules_source(&text) {
                Ok(message) => {
                    println!("{message}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("rules: {e}")),
            }
        }
        // Offline: parse + lower a rule file, then describe every rule and
        // its compiled match plan.  The linter's exit code is the check:
        // parse or lowering errors print (with caret snippets for .ngdl)
        // and exit nonzero.
        "check" => {
            let Some(rules_path) = rest.get(1) else {
                usage()
            };
            let text = match std::fs::read_to_string(rules_path) {
                Ok(text) => text,
                Err(e) => return fail(format!("read {rules_path}: {e}")),
            };
            let sigma = match parse_rules(&text) {
                Ok(sigma) => sigma,
                Err(e) => return fail(format!("check {rules_path}:\n{e}")),
            };
            let checked = match rest.get(2) {
                Some(snap_path) => with_snapshot_stats(snap_path, CheckAction { sigma: &sigma }),
                None => {
                    println!("plans over empty statistics (no snapshot given):");
                    check_rules(&sigma, &ngd_graph::Graph::new())
                }
            };
            match checked {
                Ok(()) => {
                    println!(
                        "{rules_path}: {} rule(s) ok, dΣ = {}",
                        sigma.len(),
                        sigma.diameter()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("check: {e}")),
            }
        }
        // Offline: compile each rule's match plan and print it.  With a
        // snapshot path the planner sees that file's label and triple-index
        // statistics (what the daemon serving it would compile); without
        // one it plans against empty statistics — the pure pattern-shape
        // order.
        "explain" => {
            let Some(rules_path) = rest.get(1) else {
                usage()
            };
            let text = match std::fs::read_to_string(rules_path) {
                Ok(text) => text,
                Err(e) => return fail(format!("read {rules_path}: {e}")),
            };
            let sigma = match parse_rules(&text) {
                Ok(sigma) => sigma,
                Err(e) => return fail(format!("parse {rules_path}: {e}")),
            };
            // Disambiguate the positionals: `explain <rules> <id>` (no
            // snapshot) and `explain <rules> <snap> [<id>]` are both
            // accepted — a lone second argument is a snapshot only if it
            // looks like one, so a mistyped rule id reports "no rule"
            // instead of a confusing snapshot-open error.
            let (snapshot, filter) = match (rest.get(2), rest.get(3)) {
                (Some(snap), Some(id)) => (Some(snap.as_str()), Some(id.as_str())),
                (Some(arg), None) if looks_like_snapshot(arg) => (Some(arg.as_str()), None),
                (Some(arg), None) => (None, Some(arg.as_str())),
                (None, _) => (None, None),
            };
            let explained = match snapshot {
                Some(snap_path) => with_snapshot_stats(
                    snap_path,
                    ExplainAction {
                        sigma: &sigma,
                        filter,
                    },
                ),
                None => {
                    println!("plans over empty statistics (no snapshot given):");
                    explain_rules(&sigma, &ngd_graph::Graph::new(), filter)
                }
            };
            match explained {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(format!("explain: {e}")),
            }
        }
        "stats" => {
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            let info = client.server_info().clone();
            match client.stats() {
                Ok(stats) => {
                    println!("server     : {}", info.server);
                    println!(
                        "snapshot   : {} nodes, {} edges, {}, epoch {}{}",
                        stats.snapshot_nodes,
                        stats.snapshot_edges,
                        match stats.fragment_count {
                            0 => "shared".to_string(),
                            n => format!("{n} fragments"),
                        },
                        stats.epoch,
                        if stats.published_epoch != stats.epoch {
                            format!(" (server publishes epoch {})", stats.published_epoch)
                        } else {
                            String::new()
                        }
                    );
                    println!(
                        "session    : {} nodes, {} edges ({} ops over {} batches)",
                        stats.session_nodes,
                        stats.session_edges,
                        stats.accumulated_ops,
                        stats.batches_applied
                    );
                    println!(
                        "pending    : {} node(s), {} edge op(s) awaiting compaction",
                        stats.pending_nodes, stats.pending_edge_ops
                    );
                    println!(
                        "service    : up {}s, {} active / {} total sessions, \
                         {} updates served, {} violations streamed",
                        stats.uptime_secs,
                        stats.sessions_active,
                        stats.sessions_total,
                        stats.updates_served,
                        stats.violations_streamed
                    );
                    println!(
                        "plan cache : {} hit rate ({} hit(s), {} miss(es))",
                        hit_rate(stats.plan_cache_hits, stats.plan_cache_misses),
                        stats.plan_cache_hits,
                        stats.plan_cache_misses
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("stats: {e}")),
            }
        }
        // Fetch the daemon's full metrics-registry snapshot over one
        // METRICS frame and render it locally — the wire always carries
        // the snapshot itself, so the output format is a client choice.
        "metrics" => {
            let format = match (
                rest.get(1).map(String::as_str),
                rest.get(2).map(String::as_str),
            ) {
                (None, _) => "prom",
                (Some("--format"), Some(fmt @ ("prom" | "json"))) => fmt,
                _ => usage(),
            };
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            match client.metrics() {
                Ok(snapshot) => {
                    let rendered = match format {
                        "json" => ngd_obs::render_json_pretty(&snapshot),
                        _ => ngd_obs::render_prometheus(&snapshot),
                    };
                    print!("{rendered}");
                    if !rendered.ends_with('\n') {
                        println!();
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("metrics: {e}")),
            }
        }
        // Live dashboard over one long-lived session: each tick fetches
        // STATS + METRICS and prints rates as counter deltas against the
        // previous tick.
        "top" => {
            let interval = match rest.get(1).map(|s| s.parse::<f64>()) {
                None => 2.0,
                Some(Ok(secs)) if secs > 0.0 => secs,
                _ => usage(),
            };
            let ticks: Option<u64> = match rest.get(2).map(|s| s.parse()) {
                None => None,
                Some(Ok(n)) if n > 0 => Some(n),
                _ => usage(),
            };
            let interval = std::time::Duration::from_secs_f64(interval);
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            let server = client.server_info().server.clone();
            let mut prev: Option<ngd_obs::MetricsSnapshot> = None;
            let mut last_tick = std::time::Instant::now();
            let mut tick = 0u64;
            loop {
                let stats = match client.stats() {
                    Ok(stats) => stats,
                    Err(e) => return fail(format!("top: {e}")),
                };
                let cur = match client.metrics() {
                    Ok(snapshot) => snapshot,
                    Err(e) => return fail(format!("top: {e}")),
                };
                let elapsed = last_tick.elapsed();
                last_tick = std::time::Instant::now();
                if prev.is_some() {
                    println!();
                }
                print_top_tick(&server, &stats, prev.as_ref(), &cur, elapsed);
                prev = Some(cur);
                tick += 1;
                if ticks.is_some_and(|n| tick >= n) {
                    return ExitCode::SUCCESS;
                }
                std::thread::sleep(interval);
            }
        }
        "reset" => {
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            match client.reset() {
                Ok(message) => {
                    println!("{message}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("reset: {e}")),
            }
        }
        "shutdown" => {
            let mut client = match connect(&addr) {
                Ok(client) => client,
                Err(e) => return fail(e),
            };
            match client.shutdown_server() {
                Ok(message) => {
                    println!("{message}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("shutdown: {e}")),
            }
        }
        _ => usage(),
    }
}
