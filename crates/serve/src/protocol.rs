//! The framed, versioned wire protocol between `ngd-serve` and its clients.
//!
//! Every message is one **frame**: a fixed 32-byte header followed by a
//! length-prefixed payload, borrowing the header conventions of the
//! snapshot format (`ngd_graph::persist::format`) — little-endian fields,
//! an 8-byte magic, an explicit version, and the same 4-lane multiply-xor
//! [`file_checksum`] over the payload so a damaged frame fails typed before
//! any payload decoding runs.
//!
//! ```text
//! ┌──────────────────────────────┐ offset 0
//! │ magic `NGDWIRE\0`            │ 8 bytes
//! │ protocol version             │ u32
//! │ frame kind                   │ u32
//! │ payload length               │ u64   (<= MAX_FRAME_LEN)
//! │ payload checksum             │ u64   (file_checksum(payload))
//! ├──────────────────────────────┤ offset 32
//! │ payload                      │ payload-length bytes
//! └──────────────────────────────┘
//! ```
//!
//! A request/response conversation per session:
//!
//! * `HELLO → HELLO_OK` — handshake, server/snapshot facts;
//! * `RULES → OK` — install a session rule set (JSON, compiled server-side);
//! * `UPDATE → VIO_CHUNK* → UPDATE_DONE` — submit a `ΔG` batch; the server
//!   streams `ΔVio⁺`/`ΔVio⁻` in bounded chunks as they are known and closes
//!   with the cost ledger, so the client observes the `|ΔG|`-bounded cost;
//! * `QUERY → VIO_CHUNK* → QUERY_DONE` — full detection on the session
//!   state;
//! * `COMPACT → EPOCH_OK` — fold this session's accumulated `ΔG` into a
//!   fresh snapshot epoch and publish it server-wide;
//! * `EPOCH → EPOCH_OK` — the session's and the server's current epochs;
//! * `METRICS → METRICS_OK` — the daemon's metrics-registry snapshot
//!   (counters, gauges, latency histograms), rendered client-side as
//!   Prometheus text or JSON;
//! * `STATS → STATS_OK`, `RESET → OK`, `SHUTDOWN → OK`;
//! * any request may be answered by `ERROR` (typed code + message).
//!
//! One frame is **pushed** rather than requested: after an epoch switch
//! (triggered by any session's `COMPACT`, or by the daemon's auto-compact
//! threshold) every other session re-roots its overlay at its next message
//! boundary and prepends an `EPOCH_SWITCHED` notice to its next answer.
//! [`crate::ServeClient`] absorbs the notice transparently and records it
//! ([`crate::ServeClient::last_epoch_switch`]).

use crate::error::ProtocolError;
use crate::wire::{self, WireReader, WireWriter};
use ngd_detect::{CostLedger, SearchStats};
use ngd_graph::persist::file_checksum;
use ngd_graph::BatchUpdate;
use ngd_match::Violation;
use std::io::{Read, Write};

/// Frame magic, first 8 bytes of every frame.
pub const MAGIC: [u8; 8] = *b"NGDWIRE\0";

/// Current protocol version.  Bump on ANY frame- or payload-layout change.
/// (v2: `COMPACT`/`EPOCH`/`EPOCH_SWITCHED` frames; epoch + pending-overlay
/// fields on `STATS_OK` and the `*_DONE` summaries.  v3: plan-cache
/// counters on `STATS_OK` and inside the `SearchStats` of the `*_DONE`
/// summaries.  v4: `METRICS`/`METRICS_OK` frames carrying the daemon's
/// metrics-registry snapshot, `uptime_secs` on `STATS_OK`, and the
/// `gallop_intersections` counter inside `SearchStats`.)
pub const WIRE_VERSION: u32 = 4;

/// Frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 32;

/// Per-frame payload ceiling (prevents a corrupt length prefix from
/// driving a giant allocation).
pub const MAX_FRAME_LEN: u64 = 256 * 1024 * 1024;

/// Violations per streamed [`VioChunk`] frame.
pub const VIO_CHUNK_LEN: usize = 512;

/// Frame kinds.  Requests are < 100, responses >= 100.
pub mod frame {
    /// Client handshake.
    pub const HELLO: u32 = 1;
    /// Install a session rule set.
    pub const RULES: u32 = 2;
    /// Submit a `ΔG` batch for incremental detection.
    pub const UPDATE: u32 = 3;
    /// Full detection over the session state.
    pub const QUERY: u32 = 4;
    /// Server/session statistics.
    pub const STATS: u32 = 5;
    /// Drop the session's accumulated update.
    pub const RESET: u32 = 6;
    /// Ask the daemon to shut down gracefully.
    pub const SHUTDOWN: u32 = 7;
    /// Fold this session's accumulated `ΔG` into a fresh snapshot epoch
    /// and publish it server-wide.
    pub const COMPACT: u32 = 8;
    /// Query the session's and the server's current epochs.
    pub const EPOCH: u32 = 9;
    /// Fetch the daemon's metrics-registry snapshot (counters, gauges,
    /// latency histograms across match/detect/persist/serve).
    pub const METRICS: u32 = 10;

    /// Handshake answer.
    pub const HELLO_OK: u32 = 100;
    /// Generic success.
    pub const OK: u32 = 101;
    /// One streamed chunk of violations.
    pub const VIO_CHUNK: u32 = 102;
    /// End of an `UPDATE` stream (ledger + stats).
    pub const UPDATE_DONE: u32 = 103;
    /// End of a `QUERY` stream.
    pub const QUERY_DONE: u32 = 104;
    /// Statistics answer.
    pub const STATS_OK: u32 = 105;
    /// Answer to `COMPACT` / `EPOCH`.
    pub const EPOCH_OK: u32 = 106;
    /// Pushed notice: this session just re-rooted onto a new epoch.  Sent
    /// at a message boundary, before the answer to the triggering request.
    pub const EPOCH_SWITCHED: u32 = 107;
    /// Metrics answer: the registry snapshot.
    pub const METRICS_OK: u32 = 108;
    /// Typed server-side failure.
    pub const ERROR: u32 = 199;
}

/// Machine-readable codes carried by [`frame::ERROR`] frames.
pub mod err_code {
    /// The request payload failed to decode.
    pub const BAD_REQUEST: u32 = 1;
    /// The submitted batch does not apply cleanly to the session state.
    pub const UPDATE_REJECTED: u32 = 2;
    /// The submitted rule set failed to parse/compile.
    pub const RULES_REJECTED: u32 = 3;
    /// Unexpected server-side failure.
    pub const INTERNAL: u32 = 4;
    /// A requested compaction could not be performed.
    pub const COMPACT_FAILED: u32 = 5;
}

/// Serialize one frame onto `w`.
pub fn write_frame(w: &mut impl Write, kind: u32, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() as u64 > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len: payload.len() as u64,
            max: MAX_FRAME_LEN,
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&kind.to_le_bytes());
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&file_checksum(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read exactly `buf.len()` bytes; `Ok(false)` on a clean EOF **before the
/// first byte**, [`ProtocolError::Truncated`] on EOF mid-buffer.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    already: u64,
) -> Result<bool, ProtocolError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && already == 0 {
                    return Ok(false);
                }
                return Err(ProtocolError::Truncated {
                    expected: already + buf.len() as u64,
                    actual: already + filled as u64,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Read and validate one frame, returning `(kind, payload)`.
///
/// A clean EOF between frames is [`ProtocolError::Disconnected`]; every
/// damage mode (short header, bad magic, foreign version, oversized length
/// prefix, short payload, checksum mismatch) is its own typed error.
pub fn read_frame(r: &mut impl Read) -> Result<(u32, Vec<u8>), ProtocolError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, 0)? {
        return Err(ProtocolError::Disconnected);
    }
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[0..8]);
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic { found: magic });
    }
    let le32 = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().expect("4B"));
    let le64 = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().expect("8B"));
    let version = le32(8);
    if version != WIRE_VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let kind = le32(12);
    let payload_len = le64(16);
    let stored_checksum = le64(24);
    if payload_len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len: payload_len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; payload_len as usize];
    if !payload.is_empty() && !read_exact_or_eof(r, &mut payload, FRAME_HEADER_LEN as u64)? {
        // Unreachable (already > 0 forces Truncated), kept for clarity.
        return Err(ProtocolError::Truncated {
            expected: FRAME_HEADER_LEN as u64 + payload_len,
            actual: FRAME_HEADER_LEN as u64,
        });
    }
    let computed = file_checksum(&payload);
    if computed != stored_checksum {
        return Err(ProtocolError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    Ok((kind, payload))
}

/// Incrementally scan `buf` for one complete frame — the non-blocking dual
/// of [`read_frame`], used by the reactor's per-connection read buffers.
///
/// Returns `Ok(None)` while the buffer holds only a frame prefix (caller
/// reads more bytes and retries), or `Ok(Some((kind, payload, consumed)))`
/// once a full validated frame is present — the caller then drops the
/// first `consumed` bytes.  Damage (bad magic, foreign version, oversized
/// length, checksum mismatch) fails typed as soon as it is *provable* from
/// the bytes seen so far: a bad magic needs only 8 bytes, a checksum
/// mismatch needs the whole frame.
pub fn scan_frame(buf: &[u8]) -> Result<Option<(u32, Vec<u8>, usize)>, ProtocolError> {
    if buf.len() >= 8 {
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&buf[0..8]);
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic { found: magic });
        }
    }
    if buf.len() >= 12 {
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4B"));
        if version != WIRE_VERSION {
            return Err(ProtocolError::UnsupportedVersion {
                found: version,
                supported: WIRE_VERSION,
            });
        }
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let kind = u32::from_le_bytes(buf[12..16].try_into().expect("4B"));
    let payload_len = u64::from_le_bytes(buf[16..24].try_into().expect("8B"));
    let stored_checksum = u64::from_le_bytes(buf[24..32].try_into().expect("8B"));
    if payload_len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len: payload_len,
            max: MAX_FRAME_LEN,
        });
    }
    let total = FRAME_HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = buf[FRAME_HEADER_LEN..total].to_vec();
    let computed = file_checksum(&payload);
    if computed != stored_checksum {
        return Err(ProtocolError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    Ok(Some((kind, payload, total)))
}

/// Serialize one frame into a byte vector (header + payload), for write
/// paths that queue bytes instead of owning a `Write` stream.
pub fn encode_frame(kind: u32, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if payload.len() as u64 > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len: payload.len() as u64,
            max: MAX_FRAME_LEN,
        });
    }
    let mut bytes = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&kind.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&file_checksum(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------------

/// `HELLO`: the client introduces itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloRequest {
    /// Free-form client identifier (logged by the server).
    pub client: String,
}

impl HelloRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.str(&self.client);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "HelloRequest");
        let client = r.str()?;
        r.finish()?;
        Ok(HelloRequest { client })
    }
}

/// `HELLO_OK`: server and snapshot facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloResponse {
    /// Server identifier and version string.
    pub server: String,
    /// Nodes in the served snapshot.
    pub node_count: u64,
    /// Edges in the served snapshot.
    pub edge_count: u64,
    /// Fragments of the served snapshot (0 = shared/unsharded).
    pub fragment_count: u32,
    /// Rules compiled into the server's default rule set.
    pub rule_count: u32,
    /// `dΣ` of the default rule set.
    pub diameter: u32,
}

impl HelloResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.str(&self.server);
        w.u64(self.node_count);
        w.u64(self.edge_count);
        w.u32(self.fragment_count);
        w.u32(self.rule_count);
        w.u32(self.diameter);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "HelloResponse");
        let out = HelloResponse {
            server: r.str()?,
            node_count: r.u64()?,
            edge_count: r.u64()?,
            fragment_count: r.u32()?,
            rule_count: r.u32()?,
            diameter: r.u32()?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// `RULES`: rule-set source text, compiled server-side.
///
/// The payload is the verbatim text of a rule file in any format the
/// sniffing loader (`ngd_lang::load_rules`) understands — `.ngdl`, the
/// legacy DSL, or `RuleSet::to_json()` output — so a client can swap a
/// served session's rules straight from a file on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulesRequest {
    /// Rule file contents (ngdl / legacy DSL / JSON; format is sniffed).
    pub source: String,
}

impl RulesRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.str(&self.source);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "RulesRequest");
        let source = r.str()?;
        r.finish()?;
        Ok(RulesRequest { source })
    }
}

/// `OK`: generic success with a human-readable note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OkResponse {
    /// What succeeded.
    pub message: String,
}

impl OkResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.str(&self.message);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "OkResponse");
        let message = r.str()?;
        r.finish()?;
        Ok(OkResponse { message })
    }
}

/// `UPDATE`: one `ΔG` batch.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The batch, relative to the session's current state.
    pub batch: BatchUpdate,
}

impl UpdateRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        wire::put_batch(&mut w, &self.batch);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "UpdateRequest");
        let batch = wire::get_batch(&mut r)?;
        r.finish()?;
        Ok(UpdateRequest { batch })
    }
}

/// Which violation stream a [`VioChunk`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `ΔVio⁺` of an update, or the result set of a query.
    Added,
    /// `ΔVio⁻` of an update.
    Removed,
}

/// `VIO_CHUNK`: one bounded chunk of a violation stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VioChunk {
    /// Which stream the chunk extends.
    pub side: Side,
    /// The violations, in the set's deterministic order.
    pub violations: Vec<Violation>,
}

impl VioChunk {
    /// Encode a chunk directly from borrowed violations — the server's
    /// streaming path, which must not clone each violation just to frame
    /// it.
    pub fn encode_refs(side: Side, violations: &[&Violation]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(match side {
            Side::Added => 0,
            Side::Removed => 1,
        });
        wire::put_violations(&mut w, violations);
        w.into_bytes()
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        VioChunk::encode_refs(self.side, &self.violations.iter().collect::<Vec<_>>())
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "VioChunk");
        let side = match r.u8()? {
            0 => Side::Added,
            1 => Side::Removed,
            tag => {
                return Err(ProtocolError::Corrupt(format!(
                    "unknown violation side {tag}"
                )))
            }
        };
        let violations = wire::get_violations(&mut r)?;
        r.finish()?;
        Ok(VioChunk { side, violations })
    }
}

/// `EPOCH_OK`: the answer to `COMPACT` and `EPOCH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochResponse {
    /// Epoch of the snapshot this session currently reads.
    pub epoch: u64,
    /// Epoch of the snapshot the server currently publishes (differs from
    /// `epoch` only for a session pinned to an old mapping).
    pub published_epoch: u64,
    /// Nodes in the session's snapshot.
    pub snapshot_nodes: u64,
    /// Edges in the session's snapshot.
    pub snapshot_edges: u64,
    /// Compactions performed by this server since startup.
    pub compactions: u64,
}

impl EpochResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.u64(self.published_epoch);
        w.u64(self.snapshot_nodes);
        w.u64(self.snapshot_edges);
        w.u64(self.compactions);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "EpochResponse");
        let out = EpochResponse {
            epoch: r.u64()?,
            published_epoch: r.u64()?,
            snapshot_nodes: r.u64()?,
            snapshot_edges: r.u64()?,
            compactions: r.u64()?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// `EPOCH_SWITCHED`: pushed once when a session re-roots onto a newly
/// published epoch at a message boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochNotice {
    /// The epoch the session re-rooted onto.
    pub epoch: u64,
    /// The epoch the session was reading before.
    pub previous_epoch: u64,
    /// Net pending nodes carried across the re-root (the residue the new
    /// snapshot does not yet contain).
    pub carried_nodes: u64,
    /// Net pending edge operations carried across the re-root.
    pub carried_ops: u64,
}

impl EpochNotice {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.u64(self.previous_epoch);
        w.u64(self.carried_nodes);
        w.u64(self.carried_ops);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "EpochNotice");
        let out = EpochNotice {
            epoch: r.u64()?,
            previous_epoch: r.u64()?,
            carried_nodes: r.u64()?,
            carried_ops: r.u64()?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// `UPDATE_DONE` / `QUERY_DONE`: the closing summary of a streamed answer.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneResponse {
    /// Epoch of the snapshot that served this answer.
    pub epoch: u64,
    /// Paper-style algorithm label (e.g. `"PIncDect (sharded)"`).
    pub algorithm: String,
    /// Server-side wall-clock nanoseconds of the detection run.
    pub elapsed_nanos: u64,
    /// Workers used.
    pub processors: u32,
    /// `dΣ`-neighbourhood size (0 for queries).
    pub neighborhood_nodes: u64,
    /// Violations streamed on the added side.
    pub added_total: u64,
    /// Violations streamed on the removed side.
    pub removed_total: u64,
    /// Matcher statistics of the run.
    pub stats: SearchStats,
    /// Cost ledger of the run — `remote_fetches` included, so a client of a
    /// sharded server observes the modelled communication cost per batch.
    pub cost: CostLedger,
}

impl DoneResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.str(&self.algorithm);
        w.u64(self.elapsed_nanos);
        w.u32(self.processors);
        w.u64(self.neighborhood_nodes);
        w.u64(self.added_total);
        w.u64(self.removed_total);
        wire::put_stats(&mut w, &self.stats);
        wire::put_cost(&mut w, &self.cost);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "DoneResponse");
        let out = DoneResponse {
            epoch: r.u64()?,
            algorithm: r.str()?,
            elapsed_nanos: r.u64()?,
            processors: r.u32()?,
            neighborhood_nodes: r.u64()?,
            added_total: r.u64()?,
            removed_total: r.u64()?,
            stats: wire::get_stats(&mut r)?,
            cost: wire::get_cost(&mut r)?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// `METRICS_OK`: the daemon's metrics-registry snapshot.  The payload is
/// the snapshot's canonical JSON (one string field), so the frame layout
/// never changes when metrics are added or removed — rendering to
/// Prometheus text or pretty JSON happens client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsResponse {
    /// Every counter, gauge, and histogram the daemon has registered.
    pub snapshot: ngd_obs::MetricsSnapshot,
}

impl MetricsResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.str(&ngd_json::to_string(&self.snapshot));
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "MetricsResponse");
        let json = r.str()?;
        r.finish()?;
        let snapshot = ngd_json::from_str(&json)
            .map_err(|e| ProtocolError::Corrupt(format!("metrics snapshot: {e}")))?;
        Ok(MetricsResponse { snapshot })
    }
}

/// `STATS_OK`: a server/session snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResponse {
    /// Epoch of the snapshot this session currently reads.
    pub epoch: u64,
    /// Epoch the server currently publishes.
    pub published_epoch: u64,
    /// Nodes in the served snapshot.
    pub snapshot_nodes: u64,
    /// Edges in the served snapshot.
    pub snapshot_edges: u64,
    /// Nodes in this session's current state (snapshot ⊕ accumulated).
    pub session_nodes: u64,
    /// Edges in this session's current state.
    pub session_edges: u64,
    /// Unit updates accumulated by this session.
    pub accumulated_ops: u64,
    /// *Net* nodes pending in this session's overlay — with
    /// `pending_edge_ops`, the overlay size an operator watches to decide
    /// when compaction is due.
    pub pending_nodes: u64,
    /// *Net* edge operations pending in this session's overlay.
    pub pending_edge_ops: u64,
    /// Batches absorbed by this session.
    pub batches_applied: u64,
    /// Fragments of the served snapshot (0 = shared).
    pub fragment_count: u32,
    /// Sessions currently connected to the server.
    pub sessions_active: u32,
    /// Sessions accepted since startup.
    pub sessions_total: u64,
    /// Update batches served since startup (all sessions).
    pub updates_served: u64,
    /// Violations streamed since startup (all sessions).
    pub violations_streamed: u64,
    /// Compiled match plans served from the published epoch's plan cache.
    pub plan_cache_hits: u64,
    /// Plan compilations (cache misses) on the published epoch.
    pub plan_cache_misses: u64,
    /// Whole seconds the daemon has been up.
    pub uptime_secs: u64,
}

impl StatsResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.u64(self.published_epoch);
        w.u64(self.snapshot_nodes);
        w.u64(self.snapshot_edges);
        w.u64(self.session_nodes);
        w.u64(self.session_edges);
        w.u64(self.accumulated_ops);
        w.u64(self.pending_nodes);
        w.u64(self.pending_edge_ops);
        w.u64(self.batches_applied);
        w.u32(self.fragment_count);
        w.u32(self.sessions_active);
        w.u64(self.sessions_total);
        w.u64(self.updates_served);
        w.u64(self.violations_streamed);
        w.u64(self.plan_cache_hits);
        w.u64(self.plan_cache_misses);
        w.u64(self.uptime_secs);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "StatsResponse");
        let out = StatsResponse {
            epoch: r.u64()?,
            published_epoch: r.u64()?,
            snapshot_nodes: r.u64()?,
            snapshot_edges: r.u64()?,
            session_nodes: r.u64()?,
            session_edges: r.u64()?,
            accumulated_ops: r.u64()?,
            pending_nodes: r.u64()?,
            pending_edge_ops: r.u64()?,
            batches_applied: r.u64()?,
            fragment_count: r.u32()?,
            sessions_active: r.u32()?,
            sessions_total: r.u64()?,
            updates_served: r.u64()?,
            violations_streamed: r.u64()?,
            plan_cache_hits: r.u64()?,
            plan_cache_misses: r.u64()?,
            uptime_secs: r.u64()?,
        };
        r.finish()?;
        Ok(out)
    }
}

/// `ERROR`: typed server-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// One of [`err_code`].
    pub code: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl ErrorResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.code);
        w.str(&self.message);
        w.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = WireReader::new(bytes, "ErrorResponse");
        let code = r.u32()?;
        let message = r.str()?;
        r.finish()?;
        Ok(ErrorResponse { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngd_graph::{intern, NodeId};

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf: Vec<u8> = Vec::new();
        let hello = HelloRequest {
            client: "test-client".into(),
        };
        write_frame(&mut buf, frame::HELLO, &hello.encode()).unwrap();
        let chunk = VioChunk {
            side: Side::Removed,
            violations: vec![Violation::new("phi4", vec![NodeId(3), NodeId(5)])],
        };
        write_frame(&mut buf, frame::VIO_CHUNK, &chunk.encode()).unwrap();

        let mut cursor = std::io::Cursor::new(buf);
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, frame::HELLO);
        assert_eq!(HelloRequest::decode(&payload).unwrap(), hello);
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, frame::VIO_CHUNK);
        assert_eq!(VioChunk::decode(&payload).unwrap(), chunk);
        assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Disconnected));
    }

    #[test]
    fn every_message_type_round_trips() {
        let hello_ok = HelloResponse {
            server: "ngd-serve/0.1".into(),
            node_count: 11_000,
            edge_count: 40_000,
            fragment_count: 4,
            rule_count: 7,
            diameter: 3,
        };
        assert_eq!(HelloResponse::decode(&hello_ok.encode()).unwrap(), hello_ok);

        let mut batch = BatchUpdate::new();
        batch.delete_edge(NodeId(1), NodeId(2), intern("status"));
        let update = UpdateRequest { batch };
        assert_eq!(UpdateRequest::decode(&update.encode()).unwrap(), update);

        let done = DoneResponse {
            epoch: 3,
            algorithm: "PIncDect (sharded)".into(),
            elapsed_nanos: 12345,
            processors: 4,
            neighborhood_nodes: 17,
            added_total: 2,
            removed_total: 1,
            stats: SearchStats {
                expanded: 4,
                candidates_inspected: 40,
                matches_found: 3,
                gallop_intersections: 5,
                plan_cache_hits: 6,
                plan_cache_misses: 2,
            },
            cost: {
                let mut c = CostLedger::default();
                c.record_remote(9, 60.0);
                c
            },
        };
        let back = DoneResponse::decode(&done.encode()).unwrap();
        assert_eq!(back, done);
        assert_eq!(back.cost.remote_fetches, 9);

        let stats = StatsResponse {
            epoch: 2,
            published_epoch: 3,
            snapshot_nodes: 1,
            snapshot_edges: 2,
            session_nodes: 3,
            session_edges: 4,
            accumulated_ops: 5,
            pending_nodes: 1,
            pending_edge_ops: 4,
            batches_applied: 6,
            fragment_count: 7,
            sessions_active: 8,
            sessions_total: 9,
            updates_served: 10,
            violations_streamed: 11,
            plan_cache_hits: 12,
            plan_cache_misses: 13,
            uptime_secs: 14,
        };
        assert_eq!(StatsResponse::decode(&stats.encode()).unwrap(), stats);

        let metrics = MetricsResponse {
            snapshot: {
                let registry = ngd_obs::MetricsRegistry::new();
                registry.counter("serve.frame.update.count").add(3);
                registry.gauge("serve.sessions.active").set(1);
                registry
                    .histogram("serve.frame.update.latency_ns")
                    .record(900);
                registry.snapshot()
            },
        };
        assert_eq!(MetricsResponse::decode(&metrics.encode()).unwrap(), metrics);

        let epoch_ok = EpochResponse {
            epoch: 4,
            published_epoch: 5,
            snapshot_nodes: 11_000,
            snapshot_edges: 40_000,
            compactions: 5,
        };
        assert_eq!(EpochResponse::decode(&epoch_ok.encode()).unwrap(), epoch_ok);

        let notice = EpochNotice {
            epoch: 5,
            previous_epoch: 4,
            carried_nodes: 2,
            carried_ops: 9,
        };
        assert_eq!(EpochNotice::decode(&notice.encode()).unwrap(), notice);

        let err = ErrorResponse {
            code: err_code::UPDATE_REJECTED,
            message: "delete of missing edge".into(),
        };
        assert_eq!(ErrorResponse::decode(&err.encode()).unwrap(), err);

        let rules = RulesRequest {
            source: "[]".into(),
        };
        assert_eq!(RulesRequest::decode(&rules.encode()).unwrap(), rules);
        let ok = OkResponse {
            message: "rules compiled".into(),
        };
        assert_eq!(OkResponse::decode(&ok.encode()).unwrap(), ok);
    }

    #[test]
    fn scan_frame_handles_every_split_point() {
        // A frame delivered one byte at a time must stay Ok(None) until the
        // final byte, then parse — the reactor's read path in miniature.
        let chunk = VioChunk {
            side: Side::Added,
            violations: vec![Violation::new("phi2", vec![NodeId(9)])],
        };
        let mut bytes: Vec<u8> = Vec::new();
        write_frame(&mut bytes, frame::VIO_CHUNK, &chunk.encode()).unwrap();
        for split in 0..bytes.len() {
            assert_eq!(
                scan_frame(&bytes[..split]).unwrap(),
                None,
                "prefix of {split} bytes must be incomplete"
            );
        }
        let (kind, payload, consumed) = scan_frame(&bytes).unwrap().unwrap();
        assert_eq!(kind, frame::VIO_CHUNK);
        assert_eq!(consumed, bytes.len());
        assert_eq!(VioChunk::decode(&payload).unwrap(), chunk);

        // Trailing bytes of the next frame are left unconsumed.
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let (_, _, consumed) = scan_frame(&two).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn scan_frame_fails_typed_as_early_as_provable() {
        // Bad magic: provable at 8 bytes, even with nothing else buffered.
        assert!(matches!(
            scan_frame(b"GARBAGE!"),
            Err(ProtocolError::BadMagic { .. })
        ));
        // Foreign version: provable at 12 bytes.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            scan_frame(&buf),
            Err(ProtocolError::UnsupportedVersion { found: 99, .. })
        ));
        // Oversized length: provable at the full header.
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&WIRE_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&frame::OK.to_le_bytes());
        header[16..24].copy_from_slice(&(1u64 << 50).to_le_bytes());
        assert!(matches!(
            scan_frame(&header),
            Err(ProtocolError::Oversized { .. })
        ));
        // Flipped payload bit: checksum mismatch once the frame completes.
        let mut bytes: Vec<u8> = Vec::new();
        write_frame(
            &mut bytes,
            frame::OK,
            &OkResponse {
                message: "x".into(),
            }
            .encode(),
        )
        .unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            scan_frame(&bytes),
            Err(ProtocolError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn encode_frame_matches_write_frame_bytes() {
        let payload = OkResponse {
            message: "same bytes".into(),
        }
        .encode();
        let mut written: Vec<u8> = Vec::new();
        write_frame(&mut written, frame::OK, &payload).unwrap();
        assert_eq!(encode_frame(frame::OK, &payload).unwrap(), written);
    }

    #[test]
    fn an_oversized_length_prefix_fails_before_allocating() {
        // Craft a header claiming a petabyte payload: read_frame must fail
        // typed on the length check, not attempt the allocation.
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&WIRE_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&frame::OK.to_le_bytes());
        header[16..24].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let mut cursor = std::io::Cursor::new(header.to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized {
                len: 1u64 << 50,
                max: MAX_FRAME_LEN,
            })
        );
    }
}
