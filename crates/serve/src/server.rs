//! The long-lived detection daemon.
//!
//! A [`Server`] mmaps one snapshot file (shared or sharded — the kind is
//! auto-detected), compiles a default rule set, binds a Unix-domain or TCP
//! listener, and serves each accepted connection on its own OS thread.
//! Every connection owns an incremental-detection session
//! ([`ngd_detect::IncrementalSession`] / [`ShardedIncrementalSession`])
//! whose [`DeltaOverlay`](ngd_graph::DeltaOverlay)s are rebased on the
//! **shared** mapped snapshot: the `GraphView` split keeps the read path
//! lock-free across sessions, so concurrency costs no copies of `G`.
//!
//! Graceful shutdown: a `SHUTDOWN` frame stops the accept loop; live
//! sessions drain as their connections close, and [`Server::wait`] /
//! [`Server::shutdown`] join every session thread before returning.

use crate::error::ProtocolError;
use crate::protocol::{
    err_code, frame, read_frame, write_frame, DoneResponse, ErrorResponse, HelloRequest,
    HelloResponse, OkResponse, RulesRequest, Side, StatsResponse, UpdateRequest, VioChunk,
    VIO_CHUNK_LEN,
};
use ngd_core::RuleSet;
use ngd_detect::{
    DeltaReport, DetectionReport, DetectorConfig, IncrementalSession, ShardedIncrementalSession,
};
use ngd_graph::persist::{MmapShardedSnapshot, MmapSnapshot, PersistError};
use ngd_graph::{BatchUpdate, GraphView, UpdateError};
use ngd_match::Violation;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path (`unix:/run/ngd.sock`).
    Unix(PathBuf),
    /// A TCP host:port (`tcp:127.0.0.1:7411`).
    Tcp(String),
}

impl ServeAddr {
    /// Parse `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(text: &str) -> Result<ServeAddr, ProtocolError> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ProtocolError::Corrupt("empty unix socket path".into()));
            }
            Ok(ServeAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(ProtocolError::Corrupt("empty tcp address".into()));
            }
            Ok(ServeAddr::Tcp(addr.to_string()))
        } else {
            Err(ProtocolError::Corrupt(format!(
                "address `{text}` must start with `unix:` or `tcp:`"
            )))
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ServeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// The mapped snapshot a server holds — shared or sharded, auto-detected.
#[derive(Debug)]
pub enum SnapshotStore {
    /// One [`MmapSnapshot`], served through the shared-snapshot detectors.
    Shared(MmapSnapshot),
    /// One [`MmapShardedSnapshot`], served with one worker per fragment.
    Sharded(MmapShardedSnapshot),
}

impl SnapshotStore {
    /// Map `path`, accepting either snapshot kind.
    pub fn open(path: &Path) -> Result<SnapshotStore, PersistError> {
        match MmapSnapshot::load(path) {
            Ok(snapshot) => Ok(SnapshotStore::Shared(snapshot)),
            Err(PersistError::WrongKind { .. }) => {
                Ok(SnapshotStore::Sharded(MmapShardedSnapshot::load(path)?))
            }
            Err(e) => Err(e),
        }
    }

    /// Nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        match self {
            SnapshotStore::Shared(s) => GraphView::node_count(s),
            SnapshotStore::Sharded(s) => GraphView::node_count(s.global()),
        }
    }

    /// Edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        match self {
            SnapshotStore::Shared(s) => GraphView::edge_count(s),
            SnapshotStore::Sharded(s) => GraphView::edge_count(s.global()),
        }
    }

    /// Fragments (0 for a shared snapshot).
    pub fn fragment_count(&self) -> usize {
        match self {
            SnapshotStore::Shared(_) => 0,
            SnapshotStore::Sharded(s) => s.fragment_count(),
        }
    }
}

/// Per-connection session state over either store shape.
enum SessionState<'a> {
    Shared(IncrementalSession<'a, MmapSnapshot>),
    Sharded(ShardedIncrementalSession<'a, MmapShardedSnapshot>),
}

impl<'a> SessionState<'a> {
    fn new(store: &'a SnapshotStore) -> Self {
        match store {
            SnapshotStore::Shared(s) => SessionState::Shared(IncrementalSession::new(s)),
            SnapshotStore::Sharded(s) => SessionState::Sharded(ShardedIncrementalSession::new(s)),
        }
    }

    fn apply(
        &mut self,
        sigma: &RuleSet,
        delta: &BatchUpdate,
        config: &DetectorConfig,
    ) -> Result<DeltaReport, UpdateError> {
        match self {
            SessionState::Shared(s) => s.apply(sigma, delta, config),
            SessionState::Sharded(s) => s.apply(sigma, delta, config),
        }
    }

    fn detect_all(&self, sigma: &RuleSet) -> DetectionReport {
        match self {
            SessionState::Shared(s) => s.detect_all(sigma),
            SessionState::Sharded(s) => s.detect_all(sigma),
        }
    }

    fn state_counts(&self) -> (usize, usize) {
        match self {
            SessionState::Shared(s) => {
                let view = s.view();
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
            SessionState::Sharded(s) => {
                let view = s.view();
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
        }
    }

    fn accumulated_ops(&self) -> u64 {
        match self {
            SessionState::Shared(s) => s.accumulated().len() as u64,
            SessionState::Sharded(s) => s.accumulated().len() as u64,
        }
    }

    fn batches_applied(&self) -> u64 {
        match self {
            SessionState::Shared(s) => s.batches_applied(),
            SessionState::Sharded(s) => s.batches_applied(),
        }
    }

    fn reset(&mut self) -> BatchUpdate {
        match self {
            SessionState::Shared(s) => s.reset(),
            SessionState::Sharded(s) => s.reset(),
        }
    }
}

/// Shared server state behind the `Arc` every session thread clones.
struct Shared {
    store: SnapshotStore,
    /// The immutable server-wide default rule set; sessions that want a
    /// different one swap their own copy via the `RULES` frame.
    sigma: Arc<RuleSet>,
    detector: DetectorConfig,
    server_name: String,
    shutdown: AtomicBool,
    sessions_active: AtomicUsize,
    sessions_total: AtomicU64,
    updates_served: AtomicU64,
    violations_streamed: AtomicU64,
}

/// A running detection daemon; dropping it **without** calling
/// [`Server::wait`] / [`Server::shutdown`] aborts the accept loop.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    local: ServeAddr,
    /// Unix socket path to unlink once the server is done.
    cleanup: Option<PathBuf>,
}

impl Server {
    /// Bind `addr` and start serving `store` with `sigma` as the default
    /// rule set.
    ///
    /// `tcp:host:0` binds an ephemeral port; the actual address is
    /// reported by [`Server::local_addr`].
    pub fn start(
        store: SnapshotStore,
        sigma: RuleSet,
        addr: &ServeAddr,
        detector: DetectorConfig,
    ) -> Result<Server, ProtocolError> {
        let shared = Arc::new(Shared {
            store,
            sigma: Arc::new(sigma),
            detector,
            server_name: format!("ngd-serve/{}", env!("CARGO_PKG_VERSION")),
            shutdown: AtomicBool::new(false),
            sessions_active: AtomicUsize::new(0),
            sessions_total: AtomicU64::new(0),
            updates_served: AtomicU64::new(0),
            violations_streamed: AtomicU64::new(0),
        });
        let (listener, local, cleanup) = AnyListener::bind(addr)?;
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ngd-serve-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))
            .map_err(|e| ProtocolError::Io(e.to_string()))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            local,
            cleanup,
        })
    }

    /// The address the server actually listens on (ephemeral TCP ports
    /// resolved).
    pub fn local_addr(&self) -> &ServeAddr {
        &self.local
    }

    /// Has a `SHUTDOWN` frame (or [`Server::shutdown`]) been processed?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (via a client `SHUTDOWN` frame),
    /// then join every session thread.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Request shutdown and join every session thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum AnyListener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    Tcp(TcpListener),
}

enum AnyStream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
            AnyStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
            AnyStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
            AnyStream::Tcp(s) => s.flush(),
        }
    }
}

impl AnyListener {
    fn bind(addr: &ServeAddr) -> Result<(AnyListener, ServeAddr, Option<PathBuf>), ProtocolError> {
        match addr {
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    // A stale socket file from a crashed daemon blocks the
                    // bind; remove it (connect() on a live one would race,
                    // but single-daemon-per-path is the deployment contract).
                    let _ = std::fs::remove_file(path);
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| ProtocolError::Io(format!("bind {}: {e}", path.display())))?;
                    listener
                        .set_nonblocking(true)
                        .map_err(|e| ProtocolError::Io(e.to_string()))?;
                    Ok((
                        AnyListener::Unix(listener),
                        ServeAddr::Unix(path.clone()),
                        Some(path.clone()),
                    ))
                }
                #[cfg(not(unix))]
                {
                    Err(ProtocolError::Io(format!(
                        "unix sockets are not available on this host (asked for {})",
                        path.display()
                    )))
                }
            }
            ServeAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)
                    .map_err(|e| ProtocolError::Io(format!("bind {spec}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                Ok((
                    AnyListener::Tcp(listener),
                    ServeAddr::Tcp(local.to_string()),
                    None,
                ))
            }
        }
    }

    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                AnyStream::Unix(s)
            }),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: AnyListener) {
    let sessions: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let session_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("ngd-serve-session".into())
                    .spawn(move || {
                        session_shared.sessions_total.fetch_add(1, Ordering::SeqCst);
                        session_shared
                            .sessions_active
                            .fetch_add(1, Ordering::SeqCst);
                        let mut stream = stream;
                        let _ = run_session(&session_shared, &mut stream);
                        session_shared
                            .sessions_active
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(handle) => sessions.lock().expect("session list lock").push(handle),
                    // Thread exhaustion rejects ONE connection (dropping the
                    // stream hangs it up); the daemon itself must survive.
                    Err(e) => eprintln!("ngd-serve: cannot spawn session thread: {e}"),
                }
                // Reap finished sessions as we go — a long-lived daemon
                // serving many short connections must not accumulate one
                // JoinHandle per connection until shutdown.
                let mut guard = sessions.lock().expect("session list lock");
                let mut live = Vec::with_capacity(guard.len());
                for handle in guard.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        live.push(handle);
                    }
                }
                *guard = live;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Drain: live sessions end when their connections close.
    for handle in sessions.into_inner().expect("session list lock") {
        let _ = handle.join();
    }
}

/// Send an `ERROR` frame (best-effort — the peer may already be gone).
fn send_error(stream: &mut AnyStream, code: u32, message: String) {
    let payload = ErrorResponse { code, message }.encode();
    let _ = write_frame(stream, frame::ERROR, &payload);
}

/// Stream a violation iterator as bounded `VIO_CHUNK` frames, encoding
/// each chunk straight from the borrowed set (no per-violation clones).
fn stream_violations<'v>(
    stream: &mut AnyStream,
    side: Side,
    violations: impl Iterator<Item = &'v Violation>,
) -> Result<u64, ProtocolError> {
    let mut total = 0u64;
    let mut chunk: Vec<&'v Violation> = Vec::with_capacity(VIO_CHUNK_LEN);
    for violation in violations {
        chunk.push(violation);
        if chunk.len() == VIO_CHUNK_LEN {
            total += chunk.len() as u64;
            write_frame(
                stream,
                frame::VIO_CHUNK,
                &VioChunk::encode_refs(side, &chunk),
            )?;
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        total += chunk.len() as u64;
        write_frame(
            stream,
            frame::VIO_CHUNK,
            &VioChunk::encode_refs(side, &chunk),
        )?;
    }
    Ok(total)
}

/// One connection's request loop.
fn run_session(shared: &Shared, stream: &mut AnyStream) -> Result<(), ProtocolError> {
    let mut state = SessionState::new(&shared.store);
    let mut sigma: Arc<RuleSet> = Arc::clone(&shared.sigma);
    loop {
        let (kind, payload) = match read_frame(stream) {
            Ok(frame) => frame,
            Err(ProtocolError::Disconnected) => return Ok(()),
            Err(e) => {
                // Framing is broken — the stream cannot be trusted any
                // further.  Tell the peer why (best-effort) and close.
                send_error(stream, err_code::BAD_REQUEST, e.to_string());
                return Err(e);
            }
        };
        match kind {
            frame::HELLO => {
                let _hello = match HelloRequest::decode(&payload) {
                    Ok(h) => h,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                let response = HelloResponse {
                    server: shared.server_name.clone(),
                    node_count: shared.store.node_count() as u64,
                    edge_count: shared.store.edge_count() as u64,
                    fragment_count: shared.store.fragment_count() as u32,
                    rule_count: sigma.len() as u32,
                    diameter: sigma.diameter() as u32,
                };
                write_frame(stream, frame::HELLO_OK, &response.encode())?;
            }
            frame::RULES => {
                let request = match RulesRequest::decode(&payload) {
                    Ok(r) => r,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                match RuleSet::from_json(&request.rules_json) {
                    Ok(rules) => {
                        let message = format!(
                            "compiled {} rule(s), dΣ = {}",
                            rules.len(),
                            rules.diameter()
                        );
                        sigma = Arc::new(rules);
                        write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
                    }
                    Err(e) => {
                        send_error(stream, err_code::RULES_REJECTED, e.to_string());
                    }
                }
            }
            frame::UPDATE => {
                let request = match UpdateRequest::decode(&payload) {
                    Ok(r) => r,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                match state.apply(&sigma, &request.batch, &shared.detector) {
                    Ok(report) => {
                        let added =
                            stream_violations(stream, Side::Added, report.delta.added.iter())?;
                        let removed =
                            stream_violations(stream, Side::Removed, report.delta.removed.iter())?;
                        shared.updates_served.fetch_add(1, Ordering::SeqCst);
                        shared
                            .violations_streamed
                            .fetch_add(added + removed, Ordering::SeqCst);
                        let done = DoneResponse {
                            algorithm: report.algorithm.label().to_string(),
                            elapsed_nanos: report.elapsed.as_nanos() as u64,
                            processors: report.processors as u32,
                            neighborhood_nodes: report.neighborhood_nodes as u64,
                            added_total: added,
                            removed_total: removed,
                            stats: report.stats,
                            cost: report.cost,
                        };
                        write_frame(stream, frame::UPDATE_DONE, &done.encode())?;
                    }
                    Err(e) => {
                        send_error(stream, err_code::UPDATE_REJECTED, e.to_string());
                    }
                }
            }
            frame::QUERY => {
                let report = state.detect_all(&sigma);
                let total = stream_violations(stream, Side::Added, report.violations.iter())?;
                shared
                    .violations_streamed
                    .fetch_add(total, Ordering::SeqCst);
                let done = DoneResponse {
                    algorithm: report.algorithm.label().to_string(),
                    elapsed_nanos: report.elapsed.as_nanos() as u64,
                    processors: report.processors as u32,
                    neighborhood_nodes: 0,
                    added_total: total,
                    removed_total: 0,
                    stats: report.stats,
                    cost: report.cost,
                };
                write_frame(stream, frame::QUERY_DONE, &done.encode())?;
            }
            frame::STATS => {
                let (session_nodes, session_edges) = state.state_counts();
                let response = StatsResponse {
                    snapshot_nodes: shared.store.node_count() as u64,
                    snapshot_edges: shared.store.edge_count() as u64,
                    session_nodes: session_nodes as u64,
                    session_edges: session_edges as u64,
                    accumulated_ops: state.accumulated_ops(),
                    batches_applied: state.batches_applied(),
                    fragment_count: shared.store.fragment_count() as u32,
                    sessions_active: shared.sessions_active.load(Ordering::SeqCst) as u32,
                    sessions_total: shared.sessions_total.load(Ordering::SeqCst),
                    updates_served: shared.updates_served.load(Ordering::SeqCst),
                    violations_streamed: shared.violations_streamed.load(Ordering::SeqCst),
                };
                write_frame(stream, frame::STATS_OK, &response.encode())?;
            }
            frame::RESET => {
                let dropped = state.reset();
                let message = format!("dropped {} accumulated unit update(s)", dropped.len());
                write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
            }
            frame::SHUTDOWN => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let message = "shutting down: accept loop stopped, sessions draining".to_string();
                write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
                return Ok(());
            }
            other => {
                send_error(
                    stream,
                    err_code::BAD_REQUEST,
                    ProtocolError::UnknownFrame { kind: other }.to_string(),
                );
            }
        }
    }
}
