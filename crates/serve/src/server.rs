//! The long-lived detection daemon.
//!
//! A [`Server`] mmaps one snapshot file (shared or sharded — the kind is
//! auto-detected), compiles a default rule set, binds a Unix-domain or TCP
//! listener, and serves each accepted connection on its own OS thread.
//! Every connection owns an incremental-detection session
//! ([`ngd_detect::IncrementalSession`] / [`ShardedIncrementalSession`])
//! whose [`DeltaOverlay`]s are rebased on the
//! **shared** mapped snapshot: the `GraphView` split keeps the read path
//! lock-free across sessions, so concurrency costs no copies of `G`.
//!
//! ## Epoch lifecycle
//!
//! Sessions accumulate `ΔG` forever, so a long-lived daemon would slowly
//! degrade back toward batch cost.  **Compaction** closes the loop: on a
//! `COMPACT` frame (or automatically once a session's accumulated update
//! crosses [`ServeOptions::compact_after`]) the session's net `ΔG` is
//! folded into a fresh `.ngds` file by
//! [`ngd_graph::CompactionWriter`] — a streaming merge, never a re-freeze
//! — the new mapping is **atomically published** (a mutex-guarded
//! [`Arc`] swap), and every other session re-roots its overlay onto the
//! new epoch at its next message boundary, prepending an `EPOCH_SWITCHED`
//! notice to its next answer.  A session whose overlay cannot be carried
//! (its node ids conflict with the published epoch) stays **pinned** to
//! its old mapping; old mappings are reference-counted and unmap when the
//! last pinned session disconnects.  Served `ΔVio` streams are
//! byte-identical across a swap — `tests/serve_equivalence.rs` pins that.
//!
//! Graceful shutdown: a `SHUTDOWN` frame stops the accept loop; live
//! sessions drain as their connections close, and [`Server::wait`] /
//! [`Server::shutdown`] join every session thread before returning.
//!
//! ## Epoch-file garbage collection
//!
//! Compacted epochs are scratch files (`<stem>.e<epoch>-<seq>.ngds` next
//! to the snapshot) that a graceful [`Drop`] unlinks — but a killed daemon
//! leaks them forever.  Every server therefore registers its listen
//! address in a sibling `<file_name>.daemons` file, and startup runs the
//! epoch-file GC **before** binding: each registered address is
//! pinged with the same decisive-connect rule the stale-unix-socket check
//! uses (only a refused connection proves death; any murkier failure is
//! treated as "alive").  Once no registered daemon answers, every epoch
//! file next to the snapshot is an orphan and is unlinked along with the
//! registry.  While any answers, all epoch files are kept — the registry
//! does not attribute files to daemons, so GC is all-or-nothing per
//! snapshot.  Binding first would be wrong: a daemon restarted on the same
//! unix address would answer its crashed predecessor's ping itself and
//! never collect.

use crate::error::ProtocolError;
use crate::protocol::{
    err_code, frame, read_frame, write_frame, DoneResponse, EpochNotice, EpochResponse,
    ErrorResponse, HelloRequest, HelloResponse, MetricsResponse, OkResponse, RulesRequest, Side,
    StatsResponse, UpdateRequest, VioChunk, VIO_CHUNK_LEN,
};
use ngd_core::RuleSet;
use ngd_detect::{
    DeltaReport, DetectionReport, DetectorConfig, IncrementalSession, ShardedIncrementalSession,
};
use ngd_graph::persist::{CompactionWriter, MmapShardedSnapshot, MmapSnapshot, PersistError};
use ngd_graph::{BatchUpdate, DeltaOverlay, GraphView, UpdateError};
use ngd_match::{PlanCache, Violation};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path (`unix:/run/ngd.sock`).
    Unix(PathBuf),
    /// A TCP host:port (`tcp:127.0.0.1:7411`).
    Tcp(String),
}

impl ServeAddr {
    /// Parse `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(text: &str) -> Result<ServeAddr, ProtocolError> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ProtocolError::Corrupt("empty unix socket path".into()));
            }
            Ok(ServeAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(ProtocolError::Corrupt("empty tcp address".into()));
            }
            Ok(ServeAddr::Tcp(addr.to_string()))
        } else {
            Err(ProtocolError::Corrupt(format!(
                "address `{text}` must start with `unix:` or `tcp:`"
            )))
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ServeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// The two mapped snapshot shapes a store can hold.
#[derive(Debug)]
enum StoreKind {
    /// One [`MmapSnapshot`], served through the shared-snapshot detectors.
    Shared(MmapSnapshot),
    /// One [`MmapShardedSnapshot`], served with one worker per fragment.
    Sharded(MmapShardedSnapshot),
}

/// The mapped snapshot a server (or one epoch of a server) holds — shared
/// or sharded, auto-detected — plus the path it was mapped from.
#[derive(Debug)]
pub struct SnapshotStore {
    path: PathBuf,
    kind: StoreKind,
    /// Compiled match plans for this mapping, shared by every session that
    /// reads it.  A compaction publishes a *new* store (hence a fresh,
    /// empty cache keyed to the new epoch) — stale plans can never leak
    /// across an epoch switch.
    plan_cache: PlanCache,
}

impl SnapshotStore {
    /// Map `path`, accepting either snapshot kind.
    pub fn open(path: &Path) -> Result<SnapshotStore, PersistError> {
        let kind = match MmapSnapshot::load(path) {
            Ok(snapshot) => StoreKind::Shared(snapshot),
            Err(PersistError::WrongKind { .. }) => {
                StoreKind::Sharded(MmapShardedSnapshot::load(path)?)
            }
            Err(e) => return Err(e),
        };
        let epoch = match &kind {
            StoreKind::Shared(s) => s.epoch(),
            StoreKind::Sharded(s) => s.epoch(),
        };
        Ok(SnapshotStore {
            path: path.to_path_buf(),
            kind,
            plan_cache: PlanCache::for_epoch(epoch),
        })
    }

    /// The plan cache every session on this mapping compiles into.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The file this store is mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The epoch recorded in the mapped file's header.
    pub fn epoch(&self) -> u64 {
        match &self.kind {
            StoreKind::Shared(s) => s.epoch(),
            StoreKind::Sharded(s) => s.epoch(),
        }
    }

    /// Nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(s) => GraphView::node_count(s),
            StoreKind::Sharded(s) => GraphView::node_count(s.global()),
        }
    }

    /// Edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(s) => GraphView::edge_count(s),
            StoreKind::Sharded(s) => GraphView::edge_count(s.global()),
        }
    }

    /// Fragments (0 for a shared snapshot).
    pub fn fragment_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(_) => 0,
            StoreKind::Sharded(s) => s.fragment_count(),
        }
    }

    /// Merge `net` into this store's file and map the result: the next
    /// epoch, same snapshot kind, stamped `epoch() + 1`.
    fn compact_into(&self, net: &BatchUpdate, out_path: &Path) -> Result<SnapshotStore, String> {
        let writer = CompactionWriter::new();
        let bytes = match &self.kind {
            StoreKind::Shared(s) => writer.encode(s, net, s.epoch() + 1),
            StoreKind::Sharded(s) => writer.encode_sharded(s, net, s.epoch() + 1),
        }
        .map_err(|e| e.to_string())?;
        std::fs::write(out_path, &bytes)
            .map_err(|e| format!("write {}: {e}", out_path.display()))?;
        SnapshotStore::open(out_path).map_err(|e| e.to_string())
    }
}

/// Serving knobs beyond the detector configuration.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Compact automatically once a session's *accumulated* unit updates
    /// reach this count (checked after each absorbed batch).  Raw size,
    /// not net: the per-batch overlay bookkeeping cost grows with the raw
    /// operation sequence, so an insert/delete churn workload (net ≈ 0)
    /// must still trigger — compacting resets it to an empty overlay
    /// either way.  `None` disables auto-compaction; `COMPACT` frames
    /// always work.
    pub compact_after: Option<u64>,
    /// Write a pretty-JSON metrics-registry snapshot to this path
    /// periodically and once more on shutdown.  `None` disables dumping;
    /// the `METRICS` frame works either way.
    pub metrics_dump: Option<PathBuf>,
    /// How often the dump file is rewritten (default 30 s).  Ignored
    /// without `metrics_dump`.
    pub metrics_interval: Option<Duration>,
}

/// Shared server state behind the `Arc` every session thread clones.
struct Shared {
    /// The currently published snapshot epoch.  Sessions clone the `Arc`
    /// at their next message boundary; superseded mappings stay alive —
    /// and mapped — exactly as long as a session still holds them.
    current: Mutex<Arc<SnapshotStore>>,
    /// The path the daemon was started on; compacted epochs are written
    /// next to it as `<stem>.e<epoch>-<seq>.ngds`.
    snapshot_path: PathBuf,
    /// Epoch files this server created (unlinked on drop).
    owned_files: Mutex<Vec<PathBuf>>,
    /// The immutable server-wide default rule set; sessions that want a
    /// different one swap their own copy via the `RULES` frame.
    sigma: Arc<RuleSet>,
    detector: DetectorConfig,
    options: ServeOptions,
    server_name: String,
    /// When the daemon started (uptime reporting).
    started: Instant,
    shutdown: AtomicBool,
    sessions_active: AtomicUsize,
    sessions_total: AtomicU64,
    updates_served: AtomicU64,
    violations_streamed: AtomicU64,
    compactions: AtomicU64,
    /// Distinguishes epoch files when concurrent compactions race from the
    /// same base epoch — overwriting a path that is still mapped would be
    /// a SIGBUS hazard, so every compaction writes a fresh file.
    file_seq: AtomicU64,
}

impl Shared {
    fn published(&self) -> Arc<SnapshotStore> {
        Arc::clone(&self.current.lock().expect("current epoch lock"))
    }
}

/// A running detection daemon; dropping it **without** calling
/// [`Server::wait`] / [`Server::shutdown`] aborts the accept loop.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    /// The periodic `--metrics-dump` writer, when configured.
    metrics_dump: Option<std::thread::JoinHandle<()>>,
    local: ServeAddr,
    /// Unix socket path to unlink once the server is done.
    cleanup: Option<PathBuf>,
    /// The daemon registry this server appended its address to.
    registry: PathBuf,
    /// The exact line to strip from the registry on graceful shutdown.
    registry_line: String,
}

impl Server {
    /// Bind `addr` and start serving `store` with `sigma` as the default
    /// rule set and default [`ServeOptions`].
    ///
    /// `tcp:host:0` binds an ephemeral port; the actual address is
    /// reported by [`Server::local_addr`].
    pub fn start(
        store: SnapshotStore,
        sigma: RuleSet,
        addr: &ServeAddr,
        detector: DetectorConfig,
    ) -> Result<Server, ProtocolError> {
        Server::start_with(store, sigma, addr, detector, ServeOptions::default())
    }

    /// As [`Server::start`], with explicit [`ServeOptions`].
    pub fn start_with(
        store: SnapshotStore,
        sigma: RuleSet,
        addr: &ServeAddr,
        detector: DetectorConfig,
        options: ServeOptions,
    ) -> Result<Server, ProtocolError> {
        let snapshot_path = store.path().to_path_buf();
        // GC **before** the bind: a daemon restarted on the same unix
        // address would otherwise answer its crashed predecessor's
        // liveness ping itself and judge the leaked epoch files owned.
        gc_stale_epoch_files(&snapshot_path);
        let shared = Arc::new(Shared {
            current: Mutex::new(Arc::new(store)),
            snapshot_path,
            owned_files: Mutex::new(Vec::new()),
            sigma: Arc::new(sigma),
            detector,
            options,
            server_name: format!("ngd-serve/{}", env!("CARGO_PKG_VERSION")),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            sessions_active: AtomicUsize::new(0),
            sessions_total: AtomicU64::new(0),
            updates_served: AtomicU64::new(0),
            violations_streamed: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            file_seq: AtomicU64::new(0),
        });
        let (listener, local, cleanup) = AnyListener::bind(addr)?;
        // Register the *resolved* address (ephemeral TCP ports included)
        // so a later startup's GC can ping this daemon.  Best-effort: a
        // read-only directory costs the GC safety net, not the server.
        let registry = daemon_registry_path(&shared.snapshot_path);
        let registry_line = local.to_string();
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&registry)
        {
            let _ = writeln!(file, "{registry_line}");
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ngd-serve-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))
            .map_err(|e| ProtocolError::Io(e.to_string()))?;
        let metrics_dump = match shared.options.metrics_dump.clone() {
            Some(path) => {
                let interval = shared
                    .options
                    .metrics_interval
                    .unwrap_or(Duration::from_secs(30));
                let dump_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("ngd-serve-metrics".into())
                        .spawn(move || metrics_dump_loop(dump_shared, path, interval))
                        .map_err(|e| ProtocolError::Io(e.to_string()))?,
                )
            }
            None => None,
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            metrics_dump,
            local,
            cleanup,
            registry,
            registry_line,
        })
    }

    /// The address the server actually listens on (ephemeral TCP ports
    /// resolved).
    pub fn local_addr(&self) -> &ServeAddr {
        &self.local
    }

    /// The epoch the server currently publishes.
    pub fn published_epoch(&self) -> u64 {
        self.shared.published().epoch()
    }

    /// Has a `SHUTDOWN` frame (or [`Server::shutdown`]) been processed?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (via a client `SHUTDOWN` frame),
    /// then join every session thread.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Request shutdown and join every session thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_dump.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
        // Epoch files this daemon created are scratch state: every session
        // has drained by now, so the mappings are gone and the files can go
        // too (the operator's original snapshot is never touched).
        for path in self
            .shared
            .owned_files
            .lock()
            .expect("owned files")
            .drain(..)
        {
            let _ = std::fs::remove_file(path);
        }
        // Deregister: strip exactly one copy of our line so the registry
        // only ever names daemons that died *un*gracefully.
        if let Ok(text) = std::fs::read_to_string(&self.registry) {
            let mut stripped = false;
            let remaining: Vec<&str> = text
                .lines()
                .filter(|line| {
                    if !stripped && *line == self.registry_line {
                        stripped = true;
                        false
                    } else {
                        !line.trim().is_empty()
                    }
                })
                .collect();
            if remaining.is_empty() {
                let _ = std::fs::remove_file(&self.registry);
            } else {
                let _ = std::fs::write(&self.registry, remaining.join("\n") + "\n");
            }
        }
    }
}

/// The daemon registry kept next to `snapshot_path`: one listen address
/// per line (`unix:…` / `tcp:…`), appended on startup, stripped on
/// graceful shutdown.
fn daemon_registry_path(snapshot_path: &Path) -> PathBuf {
    let name = snapshot_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    snapshot_path.with_file_name(format!("{name}.daemons"))
}

/// Is `name` a compacted-epoch sibling of a snapshot with this `stem` —
/// i.e. `<stem>.e<digits>-<digits>.ngds` as written by `compact_session`?
fn is_epoch_file_name(name: &str, stem: &str) -> bool {
    let Some(rest) = name.strip_prefix(stem) else {
        return false;
    };
    let Some(rest) = rest.strip_prefix(".e") else {
        return false;
    };
    let Some(body) = rest.strip_suffix(".ngds") else {
        return false;
    };
    let Some((epoch, seq)) = body.split_once('-') else {
        return false;
    };
    !epoch.is_empty()
        && !seq.is_empty()
        && epoch.bytes().all(|b| b.is_ascii_digit())
        && seq.bytes().all(|b| b.is_ascii_digit())
}

/// Does anything answer a connect on `addr`?  Same decisive-connect rule
/// as the stale-unix-socket check in [`AnyListener::bind`]: only a refused
/// connection (or a missing socket file) proves nothing listens; any
/// murkier failure could be a live-but-busy daemon, so it counts as alive.
fn daemon_answers(addr: &ServeAddr) -> bool {
    match addr {
        ServeAddr::Unix(path) => {
            #[cfg(unix)]
            {
                use std::io::ErrorKind;
                match std::os::unix::net::UnixStream::connect(path) {
                    Ok(_) => true,
                    Err(e) => {
                        !matches!(e.kind(), ErrorKind::ConnectionRefused | ErrorKind::NotFound)
                    }
                }
            }
            #[cfg(not(unix))]
            {
                // A unix line on a non-unix host cannot be pinged; keeping
                // the files beats deleting a reachable daemon's state.
                let _ = path;
                true
            }
        }
        ServeAddr::Tcp(spec) => match TcpStream::connect(spec) {
            Ok(_) => true,
            Err(e) => e.kind() != std::io::ErrorKind::ConnectionRefused,
        },
    }
}

/// Unlink epoch files leaked next to `snapshot_path` by crashed daemons.
///
/// Reads the sibling registry, pings every recorded address, and prunes
/// the lines that no longer answer.  Only when **no** registered daemon
/// answers are the `<stem>.e<epoch>-<seq>.ngds` siblings unlinked (and the
/// registry removed with them): the registry does not say which daemon
/// wrote which file, so while any answers every epoch file is presumed
/// owned.  Unparseable lines are kept and treated as alive — deleting
/// mapped files on a guess would SIGBUS a reader.  Best-effort and racy by
/// design (two daemons starting at once may both rewrite the registry);
/// the appends on startup re-establish every live daemon's line.
fn gc_stale_epoch_files(snapshot_path: &Path) {
    let registry = daemon_registry_path(snapshot_path);
    let Ok(text) = std::fs::read_to_string(&registry) else {
        return;
    };
    let recorded: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .collect();
    let live: Vec<&str> = recorded
        .iter()
        .copied()
        .filter(|line| match ServeAddr::parse(line) {
            Ok(addr) => daemon_answers(&addr),
            Err(_) => true,
        })
        .collect();
    if live.is_empty() {
        let stem = snapshot_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("snapshot");
        let dir = match snapshot_path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_some_and(|n| is_epoch_file_name(n, stem)) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let _ = std::fs::remove_file(&registry);
    } else if live.len() < recorded.len() {
        let _ = std::fs::write(&registry, live.join("\n") + "\n");
    }
}

enum AnyListener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    Tcp(TcpListener),
}

enum AnyStream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
            AnyStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
            AnyStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
            AnyStream::Tcp(s) => s.flush(),
        }
    }
}

impl AnyListener {
    fn bind(addr: &ServeAddr) -> Result<(AnyListener, ServeAddr, Option<PathBuf>), ProtocolError> {
        match addr {
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    // A socket file left by a killed daemon would block the
                    // bind forever.  Ping it first: if something answers the
                    // connect, a live daemon owns the path and we must NOT
                    // steal it; if nothing answers, the file is stale and is
                    // unlinked so the bind can proceed.
                    if path.exists() {
                        match std::os::unix::net::UnixStream::connect(path) {
                            Ok(_) => {
                                return Err(ProtocolError::Io(format!(
                                    "{} is in use by a live daemon (connect succeeded); \
                                     refusing to steal the socket",
                                    path.display()
                                )));
                            }
                            // Only a refused connection proves nothing is
                            // listening.  Any other failure (EAGAIN from a
                            // momentarily full accept backlog, EACCES, …)
                            // could be a live daemon — refuse to unlink on
                            // a guess.
                            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                                let _ = std::fs::remove_file(path);
                            }
                            Err(e) => {
                                return Err(ProtocolError::Io(format!(
                                    "{} did not answer the liveness ping decisively \
                                     ({e}); refusing to unlink it — remove the socket \
                                     manually if the daemon is really gone",
                                    path.display()
                                )));
                            }
                        }
                    }
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| ProtocolError::Io(format!("bind {}: {e}", path.display())))?;
                    listener
                        .set_nonblocking(true)
                        .map_err(|e| ProtocolError::Io(e.to_string()))?;
                    Ok((
                        AnyListener::Unix(listener),
                        ServeAddr::Unix(path.clone()),
                        Some(path.clone()),
                    ))
                }
                #[cfg(not(unix))]
                {
                    Err(ProtocolError::Io(format!(
                        "unix sockets are not available on this host (asked for {})",
                        path.display()
                    )))
                }
            }
            ServeAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)
                    .map_err(|e| ProtocolError::Io(format!("bind {spec}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                Ok((
                    AnyListener::Tcp(listener),
                    ServeAddr::Tcp(local.to_string()),
                    None,
                ))
            }
        }
    }

    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                AnyStream::Unix(s)
            }),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
        }
    }
}

/// The `--metrics-dump` writer: rewrite `path` with a pretty-JSON registry
/// snapshot every `interval`, and once more on shutdown so the final state
/// of a graceful exit is always on disk.
fn metrics_dump_loop(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut last = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() >= interval {
            write_metrics_dump(&path);
            last = Instant::now();
        }
    }
    write_metrics_dump(&path);
}

/// Best-effort dump-file rewrite (a read-only directory costs the dump,
/// not the daemon).
fn write_metrics_dump(path: &Path) {
    let snapshot = ngd_obs::global().snapshot();
    if let Err(e) = std::fs::write(path, ngd_obs::render_json_pretty(&snapshot)) {
        eprintln!(
            "ngd-serve: cannot write metrics dump {}: {e}",
            path.display()
        );
    }
}

/// Total request bytes read off client connections.
static BYTES_IN: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.bytes.in");
/// Total response bytes written to client connections.
static BYTES_OUT: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.bytes.out");
/// Sessions accepted since startup (mirrors `Shared::sessions_total`).
static SESSIONS_TOTAL: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.sessions.total");
/// Sessions currently connected (mirrors `Shared::sessions_active`).
static SESSIONS_ACTIVE: ngd_obs::LazyGauge = ngd_obs::LazyGauge::new("serve.sessions.active");
/// Epoch switches published (mirrors `Shared::compactions`).
static EPOCH_SWITCHES: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.epoch.switches");
/// Sessions successfully re-rooted onto a newly published epoch.
static SESSION_REBASES: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.session.rebases");
/// `EPOCH_SWITCHED` notices pushed to clients.
static SWITCH_NOTICES: ngd_obs::LazyCounter =
    ngd_obs::LazyCounter::new("serve.epoch.switched_notices");

/// A transparent byte-accounting wrapper around a session's stream: every
/// read feeds `serve.bytes.in`, every write `serve.bytes.out`.
struct CountingStream<S> {
    inner: S,
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        BYTES_IN.add(n as u64);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        BYTES_OUT.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The metric segment for a request frame kind (`serve.frame.<segment>.*`).
fn frame_metric_name(kind: u32) -> Option<&'static str> {
    Some(match kind {
        frame::HELLO => "hello",
        frame::RULES => "rules",
        frame::UPDATE => "update",
        frame::QUERY => "query",
        frame::STATS => "stats",
        frame::RESET => "reset",
        frame::SHUTDOWN => "shutdown",
        frame::COMPACT => "compact",
        frame::EPOCH => "epoch",
        frame::METRICS => "metrics",
        _ => return None,
    })
}

/// Counts a request on construction and records its latency on drop, so
/// the sample lands even when the dispatch arm bails early with an error
/// reply.  Two registry lookups per request — nowhere near the per-frame
/// byte path.
struct FrameTimer {
    name: &'static str,
    start: Instant,
}

impl FrameTimer {
    fn start(kind: u32) -> Option<FrameTimer> {
        if !ngd_obs::enabled() {
            return None;
        }
        let name = frame_metric_name(kind)?;
        ngd_obs::global()
            .counter(&format!("serve.frame.{name}.count"))
            .inc();
        Some(FrameTimer {
            name,
            start: Instant::now(),
        })
    }
}

impl Drop for FrameTimer {
    fn drop(&mut self) {
        ngd_obs::global()
            .histogram(&format!("serve.frame.{}.latency_ns", self.name))
            .record_duration(self.start.elapsed());
    }
}

fn accept_loop(shared: Arc<Shared>, listener: AnyListener) {
    let sessions: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let session_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("ngd-serve-session".into())
                    .spawn(move || {
                        session_shared.sessions_total.fetch_add(1, Ordering::SeqCst);
                        session_shared
                            .sessions_active
                            .fetch_add(1, Ordering::SeqCst);
                        SESSIONS_TOTAL.inc();
                        SESSIONS_ACTIVE.add(1);
                        let mut stream = stream;
                        let _ = run_session(&session_shared, &mut stream);
                        session_shared
                            .sessions_active
                            .fetch_sub(1, Ordering::SeqCst);
                        SESSIONS_ACTIVE.add(-1);
                    });
                match spawned {
                    Ok(handle) => sessions.lock().expect("session list lock").push(handle),
                    // Thread exhaustion rejects ONE connection (dropping the
                    // stream hangs it up); the daemon itself must survive.
                    Err(e) => eprintln!("ngd-serve: cannot spawn session thread: {e}"),
                }
                // Reap finished sessions as we go — a long-lived daemon
                // serving many short connections must not accumulate one
                // JoinHandle per connection until shutdown.
                let mut guard = sessions.lock().expect("session list lock");
                let mut live = Vec::with_capacity(guard.len());
                for handle in guard.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        live.push(handle);
                    }
                }
                *guard = live;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Drain: live sessions end when their connections close.
    for handle in sessions.into_inner().expect("session list lock") {
        let _ = handle.join();
    }
}

/// Send an `ERROR` frame (best-effort — the peer may already be gone).
fn send_error(stream: &mut impl Write, code: u32, message: String) {
    let payload = ErrorResponse { code, message }.encode();
    let _ = write_frame(stream, frame::ERROR, &payload);
}

/// Stream a violation iterator as bounded `VIO_CHUNK` frames, encoding
/// each chunk straight from the borrowed set (no per-violation clones).
fn stream_violations<'v>(
    stream: &mut impl Write,
    side: Side,
    violations: impl Iterator<Item = &'v Violation>,
) -> Result<u64, ProtocolError> {
    let mut total = 0u64;
    let mut chunk: Vec<&'v Violation> = Vec::with_capacity(VIO_CHUNK_LEN);
    for violation in violations {
        chunk.push(violation);
        if chunk.len() == VIO_CHUNK_LEN {
            total += chunk.len() as u64;
            write_frame(
                stream,
                frame::VIO_CHUNK,
                &VioChunk::encode_refs(side, &chunk),
            )?;
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        total += chunk.len() as u64;
        write_frame(
            stream,
            frame::VIO_CHUNK,
            &VioChunk::encode_refs(side, &chunk),
        )?;
    }
    Ok(total)
}

/// One connection's session state, owning its epoch mapping.
///
/// The detect-crate session types borrow their base, so each request
/// re-materialises one around the `Arc` — a few moves, no graph copies —
/// which is what lets the connection swap epochs between requests.
struct SessionCtx {
    store: Arc<SnapshotStore>,
    accumulated: BatchUpdate,
    batches_applied: u64,
    /// An epoch switch to announce before the next answer.
    notice: Option<EpochNotice>,
    /// The published store a re-root already failed against — the session
    /// is *pinned* to its own mapping until a different epoch appears, and
    /// this memo keeps every subsequent frame from repeating the identical
    /// doomed O(|overlay|) attempt.
    reroot_failed_for: Option<Arc<SnapshotStore>>,
    /// An auto-compaction failed (full disk, pinned session, lost race):
    /// stop re-paying the O(|file|) merge on every batch.  Cleared when a
    /// re-root or RESET changes the session's situation; explicit `COMPACT`
    /// frames are never suppressed.
    auto_compact_disabled: bool,
}

impl SessionCtx {
    fn new(store: Arc<SnapshotStore>) -> SessionCtx {
        SessionCtx {
            store,
            accumulated: BatchUpdate::new(),
            batches_applied: 0,
            notice: None,
            reroot_failed_for: None,
            auto_compact_disabled: false,
        }
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The session's accumulated update as a canonical net batch.
    fn net(&self) -> BatchUpdate {
        match &self.store.kind {
            StoreKind::Shared(s) => DeltaOverlay::new(s, &self.accumulated).into_batch(),
            StoreKind::Sharded(s) => DeltaOverlay::new(s.global(), &self.accumulated).into_batch(),
        }
    }

    fn apply(
        &mut self,
        sigma: &RuleSet,
        delta: &BatchUpdate,
        config: &DetectorConfig,
    ) -> Result<DeltaReport, UpdateError> {
        let accumulated = std::mem::take(&mut self.accumulated);
        let cache = self.store.plan_cache();
        let (result, accumulated, batches) = match &self.store.kind {
            StoreKind::Shared(s) => {
                let mut session = IncrementalSession::resume(s, accumulated, self.batches_applied);
                let result = session.apply_with_cache(sigma, delta, config, cache);
                let (accumulated, batches) = session.into_parts();
                (result, accumulated, batches)
            }
            StoreKind::Sharded(s) => {
                let mut session =
                    ShardedIncrementalSession::resume(s, accumulated, self.batches_applied);
                let result = session.apply_with_cache(sigma, delta, config, cache);
                let (accumulated, batches) = session.into_parts();
                (result, accumulated, batches)
            }
        };
        self.accumulated = accumulated;
        self.batches_applied = batches;
        result
    }

    fn detect_all(&self, sigma: &RuleSet) -> DetectionReport {
        let cache = self.store.plan_cache();
        match &self.store.kind {
            StoreKind::Shared(s) => IncrementalSession::resume(s, self.accumulated.clone(), 0)
                .detect_all_with_cache(sigma, cache),
            StoreKind::Sharded(s) => {
                ShardedIncrementalSession::resume(s, self.accumulated.clone(), 0)
                    .detect_all_with_cache(sigma, cache)
            }
        }
    }

    fn state_counts(&self) -> (usize, usize) {
        let (nodes, edges) = match &self.store.kind {
            StoreKind::Shared(s) => {
                let view = DeltaOverlay::new(s, &self.accumulated);
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
            StoreKind::Sharded(s) => {
                let view = DeltaOverlay::new(s.global(), &self.accumulated);
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
        };
        (nodes, edges)
    }

    /// `(net pending nodes, net pending edge ops)` of the overlay.
    fn pending(&self) -> (u64, u64) {
        let net = self.net();
        (net.new_nodes.len() as u64, net.ops.len() as u64)
    }

    fn reset(&mut self) -> BatchUpdate {
        self.batches_applied = 0;
        // The re-root refusal was about the overlay being discarded here;
        // with an empty overlay the next message boundary can adopt the
        // published epoch after all.
        self.reroot_failed_for = None;
        self.auto_compact_disabled = false;
        std::mem::take(&mut self.accumulated)
    }

    /// At a message boundary: if a newer epoch has been published, try to
    /// re-root this session's overlay onto it.  On success the old `Arc`
    /// is released (unmapping the file once the last session lets go) and
    /// an `EPOCH_SWITCHED` notice is queued; on failure the session pins
    /// to its current mapping and keeps serving correctly from it.
    fn maybe_reroot(&mut self, shared: &Shared) {
        let current = shared.published();
        if Arc::ptr_eq(&current, &self.store) {
            return;
        }
        if self
            .reroot_failed_for
            .as_ref()
            .is_some_and(|failed| Arc::ptr_eq(failed, &current))
        {
            return;
        }
        let previous_epoch = self.epoch();
        let accumulated = std::mem::take(&mut self.accumulated);
        let rerooted: Result<BatchUpdate, BatchUpdate> = match (&self.store.kind, &current.kind) {
            (StoreKind::Shared(old), StoreKind::Shared(new)) => {
                let session = IncrementalSession::resume(old, accumulated, self.batches_applied);
                match session.rebase_onto(new) {
                    Ok(moved) => Ok(moved.into_parts().0),
                    Err(_) => Err(session.into_parts().0),
                }
            }
            (StoreKind::Sharded(old), StoreKind::Sharded(new)) => {
                let session =
                    ShardedIncrementalSession::resume(old, accumulated, self.batches_applied);
                match session.rebase_onto(new) {
                    Ok(moved) => Ok(moved.into_parts().0),
                    Err(_) => Err(session.into_parts().0),
                }
            }
            // A published epoch never changes kind; treat a mismatch as
            // un-carriable rather than corrupting the session.
            _ => Err(accumulated),
        };
        match rerooted {
            Ok(residue) => {
                self.notice = Some(EpochNotice {
                    epoch: current.epoch(),
                    previous_epoch,
                    carried_nodes: residue.new_nodes.len() as u64,
                    carried_ops: residue.ops.len() as u64,
                });
                self.accumulated = residue;
                self.store = current;
                self.reroot_failed_for = None;
                self.auto_compact_disabled = false;
                SESSION_REBASES.inc();
            }
            // The published epoch cannot absorb this overlay: keep serving
            // from the session's own (refcounted) mapping, and remember the
            // refusal so the attempt is not repeated until a *different*
            // epoch is published.  Clients observe the pinned state as
            // `epoch != published_epoch` in EPOCH/STATS.
            Err(kept) => {
                self.accumulated = kept;
                self.reroot_failed_for = Some(current);
            }
        }
    }
}

/// Fold `ctx`'s accumulated overlay into the next epoch file, publish the
/// new mapping server-wide, and re-root the requesting session onto it.
fn compact_session(shared: &Shared, ctx: &mut SessionCtx) -> Result<EpochResponse, String> {
    // A session not on the published epoch (pinned after a failed re-root)
    // would fail the compare-and-publish below anyway — bail before paying
    // the O(|file|) merge for it.
    if !Arc::ptr_eq(&shared.published(), &ctx.store) {
        return Err(format!(
            "session reads epoch {} but epoch {} is published; a pinned \
             session cannot publish a compaction",
            ctx.store.epoch(),
            shared.published().epoch()
        ));
    }
    let net = ctx.net();
    let new_epoch = ctx.store.epoch() + 1;
    let stem = shared
        .snapshot_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("snapshot");
    let seq = shared.file_seq.fetch_add(1, Ordering::SeqCst);
    let out_path = shared
        .snapshot_path
        .with_file_name(format!("{stem}.e{new_epoch}-{seq}.ngds"));
    let base = Arc::clone(&ctx.store);
    let new_store = Arc::new(ctx.store.compact_into(&net, &out_path)?);
    // Compare-and-publish: the merge happened outside the lock, so another
    // session may have published meanwhile.  Blindly overwriting would
    // silently drop that compaction's folded updates from the published
    // graph — instead the superseded attempt fails typed (and its freshly
    // written epoch file is unlinked, not orphaned); the requester
    // re-roots onto the winner at its next message boundary and can retry.
    {
        let mut current = shared.current.lock().expect("current epoch lock");
        if !Arc::ptr_eq(&current, &base) {
            let superseded_by = current.epoch();
            drop(current);
            drop(new_store);
            let _ = std::fs::remove_file(&out_path);
            return Err(format!(
                "superseded by a concurrent compaction (epoch {superseded_by} was \
                 published during the merge); re-rooted sessions may retry"
            ));
        }
        *current = Arc::clone(&new_store);
    }
    shared
        .owned_files
        .lock()
        .expect("owned files")
        .push(out_path);
    shared.compactions.fetch_add(1, Ordering::SeqCst);
    EPOCH_SWITCHES.inc();
    ctx.maybe_reroot(shared);
    Ok(EpochResponse {
        epoch: ctx.epoch(),
        published_epoch: new_store.epoch(),
        snapshot_nodes: ctx.store.node_count() as u64,
        snapshot_edges: ctx.store.edge_count() as u64,
        compactions: shared.compactions.load(Ordering::SeqCst),
    })
}

/// One connection's request loop.
fn run_session(shared: &Shared, raw: &mut AnyStream) -> Result<(), ProtocolError> {
    // All frame I/O goes through the byte-accounting wrapper; `raw` is not
    // touched again below.
    let stream = &mut CountingStream { inner: raw };
    let mut ctx = SessionCtx::new(shared.published());
    let mut sigma: Arc<RuleSet> = Arc::clone(&shared.sigma);
    loop {
        let (kind, payload) = match read_frame(stream) {
            Ok(frame) => frame,
            Err(ProtocolError::Disconnected) => return Ok(()),
            Err(e) => {
                // Framing is broken — the stream cannot be trusted any
                // further.  Tell the peer why (best-effort) and close.
                send_error(stream, err_code::BAD_REQUEST, e.to_string());
                return Err(e);
            }
        };
        let _frame_timer = FrameTimer::start(kind);
        // Message boundary: adopt a newly published epoch before touching
        // the request, and announce the switch ahead of the answer.
        ctx.maybe_reroot(shared);
        if let Some(notice) = ctx.notice.take() {
            SWITCH_NOTICES.inc();
            write_frame(stream, frame::EPOCH_SWITCHED, &notice.encode())?;
        }
        match kind {
            frame::HELLO => {
                let _hello = match HelloRequest::decode(&payload) {
                    Ok(h) => h,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                let response = HelloResponse {
                    server: shared.server_name.clone(),
                    node_count: ctx.store.node_count() as u64,
                    edge_count: ctx.store.edge_count() as u64,
                    fragment_count: ctx.store.fragment_count() as u32,
                    rule_count: sigma.len() as u32,
                    diameter: sigma.diameter() as u32,
                };
                write_frame(stream, frame::HELLO_OK, &response.encode())?;
            }
            frame::RULES => {
                let request = match RulesRequest::decode(&payload) {
                    Ok(r) => r,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                match ngd_lang::load_rules(&request.source) {
                    Ok(rules) => {
                        let message = format!(
                            "compiled {} rule(s), dΣ = {}",
                            rules.len(),
                            rules.diameter()
                        );
                        sigma = Arc::new(rules);
                        write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
                    }
                    Err(e) => {
                        send_error(stream, err_code::RULES_REJECTED, e.to_string());
                    }
                }
            }
            frame::UPDATE => {
                let request = match UpdateRequest::decode(&payload) {
                    Ok(r) => r,
                    Err(e) => {
                        send_error(stream, err_code::BAD_REQUEST, e.to_string());
                        continue;
                    }
                };
                match ctx.apply(&sigma, &request.batch, &shared.detector) {
                    Ok(report) => {
                        let added =
                            stream_violations(stream, Side::Added, report.delta.added.iter())?;
                        let removed =
                            stream_violations(stream, Side::Removed, report.delta.removed.iter())?;
                        shared.updates_served.fetch_add(1, Ordering::SeqCst);
                        shared
                            .violations_streamed
                            .fetch_add(added + removed, Ordering::SeqCst);
                        let done = DoneResponse {
                            epoch: ctx.epoch(),
                            algorithm: report.algorithm.label().to_string(),
                            elapsed_nanos: report.elapsed.as_nanos() as u64,
                            processors: report.processors as u32,
                            neighborhood_nodes: report.neighborhood_nodes as u64,
                            added_total: added,
                            removed_total: removed,
                            stats: report.stats,
                            cost: report.cost,
                        };
                        write_frame(stream, frame::UPDATE_DONE, &done.encode())?;
                        // Background compaction: once the accumulated raw
                        // op sequence crosses the threshold, fold it into
                        // a new epoch (raw, not net — churn that nets to
                        // nothing still inflates per-batch bookkeeping).
                        // Other sessions keep serving and pick the epoch
                        // up at their next message boundary.
                        if let Some(limit) = shared.options.compact_after {
                            if !ctx.auto_compact_disabled && ctx.accumulated.len() as u64 >= limit {
                                if let Err(e) = compact_session(shared, &mut ctx) {
                                    eprintln!(
                                        "ngd-serve: auto-compaction failed (disabled for                                          this session until it re-roots or resets): {e}"
                                    );
                                    ctx.auto_compact_disabled = true;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        send_error(stream, err_code::UPDATE_REJECTED, e.to_string());
                    }
                }
            }
            frame::QUERY => {
                let report = ctx.detect_all(&sigma);
                let total = stream_violations(stream, Side::Added, report.violations.iter())?;
                shared
                    .violations_streamed
                    .fetch_add(total, Ordering::SeqCst);
                let done = DoneResponse {
                    epoch: ctx.epoch(),
                    algorithm: report.algorithm.label().to_string(),
                    elapsed_nanos: report.elapsed.as_nanos() as u64,
                    processors: report.processors as u32,
                    neighborhood_nodes: 0,
                    added_total: total,
                    removed_total: 0,
                    stats: report.stats,
                    cost: report.cost,
                };
                write_frame(stream, frame::QUERY_DONE, &done.encode())?;
            }
            frame::COMPACT => match compact_session(shared, &mut ctx) {
                Ok(response) => {
                    // The requester observed the switch through EPOCH_OK;
                    // no separate notice needed.
                    ctx.notice = None;
                    write_frame(stream, frame::EPOCH_OK, &response.encode())?;
                }
                Err(e) => {
                    send_error(stream, err_code::COMPACT_FAILED, e);
                }
            },
            frame::EPOCH => {
                let response = EpochResponse {
                    epoch: ctx.epoch(),
                    published_epoch: shared.published().epoch(),
                    snapshot_nodes: ctx.store.node_count() as u64,
                    snapshot_edges: ctx.store.edge_count() as u64,
                    compactions: shared.compactions.load(Ordering::SeqCst),
                };
                write_frame(stream, frame::EPOCH_OK, &response.encode())?;
            }
            frame::STATS => {
                let (session_nodes, session_edges) = ctx.state_counts();
                let (pending_nodes, pending_edge_ops) = ctx.pending();
                let response = StatsResponse {
                    epoch: ctx.epoch(),
                    published_epoch: shared.published().epoch(),
                    snapshot_nodes: ctx.store.node_count() as u64,
                    snapshot_edges: ctx.store.edge_count() as u64,
                    session_nodes: session_nodes as u64,
                    session_edges: session_edges as u64,
                    accumulated_ops: ctx.accumulated.len() as u64,
                    pending_nodes,
                    pending_edge_ops,
                    batches_applied: ctx.batches_applied,
                    fragment_count: ctx.store.fragment_count() as u32,
                    sessions_active: shared.sessions_active.load(Ordering::SeqCst) as u32,
                    sessions_total: shared.sessions_total.load(Ordering::SeqCst),
                    updates_served: shared.updates_served.load(Ordering::SeqCst),
                    violations_streamed: shared.violations_streamed.load(Ordering::SeqCst),
                    plan_cache_hits: ctx.store.plan_cache().hits(),
                    plan_cache_misses: ctx.store.plan_cache().misses(),
                    uptime_secs: shared.started.elapsed().as_secs(),
                };
                write_frame(stream, frame::STATS_OK, &response.encode())?;
            }
            frame::METRICS => {
                let response = MetricsResponse {
                    snapshot: ngd_obs::global().snapshot(),
                };
                write_frame(stream, frame::METRICS_OK, &response.encode())?;
            }
            frame::RESET => {
                let dropped = ctx.reset();
                let message = format!("dropped {} accumulated unit update(s)", dropped.len());
                write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
            }
            frame::SHUTDOWN => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let message = "shutting down: accept loop stopped, sessions draining".to_string();
                write_frame(stream, frame::OK, &OkResponse { message }.encode())?;
                return Ok(());
            }
            other => {
                send_error(
                    stream,
                    err_code::BAD_REQUEST,
                    ProtocolError::UnknownFrame { kind: other }.to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_file_name_matcher_is_exact() {
        assert!(is_epoch_file_name("snap.e1-0.ngds", "snap"));
        assert!(is_epoch_file_name("snap.e12-345.ngds", "snap"));
        // Wrong stem, missing sequence, non-digits, wrong extension.
        assert!(!is_epoch_file_name("other.e1-0.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1-.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e-0.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.ea-b.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1-0.ngds.bak", "snap"));
        assert!(!is_epoch_file_name("snap.ngds", "snap"));
    }

    #[test]
    fn registry_sits_next_to_the_snapshot() {
        assert_eq!(
            daemon_registry_path(Path::new("/var/ngd/snap.ngds")),
            PathBuf::from("/var/ngd/snap.ngds.daemons")
        );
        assert_eq!(
            daemon_registry_path(Path::new("snap.ngds")),
            PathBuf::from("snap.ngds.daemons")
        );
    }
}
