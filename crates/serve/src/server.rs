//! The long-lived detection daemon.
//!
//! A [`Server`] mmaps one snapshot file (shared or sharded — the kind is
//! auto-detected), compiles a default rule set, binds a Unix-domain or TCP
//! listener, and serves connections with a **reactor + bounded worker
//! pool** (on Unix; other platforms fall back to one blocking thread per
//! connection):
//!
//! * one `ngd-serve-reactor` thread runs the event loop
//!   ([`crate::poller`] — epoll on Linux, poll(2) elsewhere): it owns the
//!   listener and every connection fd in non-blocking mode, parses frames
//!   incrementally into per-connection read buffers, and drains
//!   per-connection write queues — it never blocks on any one peer;
//! * [`ServeOptions::worker_threads`] `ngd-serve-worker` threads execute
//!   requests: a connection's parked session state moves into a worker
//!   for one request and back, so **thousands of idle connections cost
//!   zero threads** and at most `worker_threads` requests run at once;
//! * answers queue on the connection's write buffer with a high-water
//!   mark ([`ServeOptions::write_buffer_limit`]): a slow reader suspends
//!   *its own* session's producer, never the loop or other sessions;
//! * `UPDATE` answers **stream during expansion** — the detect run pushes
//!   each fresh violation through a sink callback
//!   ([`ngd_detect::VioSink`]), so the first `VIO_CHUNK` reaches the
//!   socket while the matchers are still running.
//!
//! Every connection owns an incremental-detection session
//! ([`ngd_detect::IncrementalSession`] / [`ShardedIncrementalSession`])
//! whose [`DeltaOverlay`]s are rebased on the
//! **shared** mapped snapshot: the `GraphView` split keeps the read path
//! lock-free across sessions, so concurrency costs no copies of `G`.
//!
//! ## Epoch lifecycle
//!
//! Sessions accumulate `ΔG` forever, so a long-lived daemon would slowly
//! degrade back toward batch cost.  **Compaction** closes the loop: on a
//! `COMPACT` frame (or automatically once a session's accumulated update
//! crosses [`ServeOptions::compact_after`]) the session's net `ΔG` is
//! folded into a fresh `.ngds` file by
//! [`ngd_graph::CompactionWriter`] — a streaming merge, never a re-freeze
//! — the new mapping is **atomically published** (a mutex-guarded
//! [`Arc`] swap), and every other session re-roots its overlay onto the
//! new epoch at its next message boundary, prepending an `EPOCH_SWITCHED`
//! notice to its next answer.  A session whose overlay cannot be carried
//! (its node ids conflict with the published epoch) stays **pinned** to
//! its old mapping; old mappings are reference-counted and unmap when the
//! last pinned session disconnects.  Served `ΔVio` streams are
//! byte-identical across a swap — `tests/serve_equivalence.rs` pins that.
//!
//! Graceful shutdown: a `SHUTDOWN` frame closes the listener at once
//! (an eventfd/self-pipe waker interrupts the event loop — no polling
//! sleeps anywhere on the serve path); live sessions drain as their
//! connections close, and [`Server::wait`] / [`Server::shutdown`] join
//! the reactor and its worker pool before returning.
//!
//! ## Epoch-file garbage collection
//!
//! Compacted epochs are scratch files (`<stem>.e<epoch>-<seq>.ngds` next
//! to the snapshot) that a graceful [`Drop`] unlinks — but a killed daemon
//! leaks them forever.  Every server therefore registers its listen
//! address in a sibling `<file_name>.daemons` file, and startup runs the
//! epoch-file GC **before** binding: each registered address is
//! pinged with the same decisive-connect rule the stale-unix-socket check
//! uses (only a refused connection proves death; any murkier failure is
//! treated as "alive").  Once no registered daemon answers, every epoch
//! file next to the snapshot is an orphan and is unlinked along with the
//! registry.  While any answers, all epoch files are kept — the registry
//! does not attribute files to daemons, so GC is all-or-nothing per
//! snapshot.  Binding first would be wrong: a daemon restarted on the same
//! unix address would answer its crashed predecessor's ping itself and
//! never collect.

use crate::error::ProtocolError;
use crate::protocol::{
    err_code, frame, DoneResponse, EpochNotice, EpochResponse, ErrorResponse, HelloRequest,
    HelloResponse, MetricsResponse, OkResponse, RulesRequest, Side, StatsResponse, UpdateRequest,
    VioChunk, VIO_CHUNK_LEN,
};
use ngd_core::RuleSet;
use ngd_detect::{
    DeltaReport, DetectionReport, DetectorConfig, IncrementalSession, ShardedIncrementalSession,
    VioSide, VioSink,
};
use ngd_graph::persist::{CompactionWriter, MmapShardedSnapshot, MmapSnapshot, PersistError};
use ngd_graph::{BatchUpdate, DeltaOverlay, GraphView, UpdateError};
use ngd_match::{PlanCache, Violation};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::poller::{Interest, Poller, Waker};
#[cfg(unix)]
use crate::protocol::{encode_frame, scan_frame};
#[cfg(not(unix))]
use crate::protocol::{read_frame, write_frame};

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path (`unix:/run/ngd.sock`).
    Unix(PathBuf),
    /// A TCP host:port (`tcp:127.0.0.1:7411`).
    Tcp(String),
}

impl ServeAddr {
    /// Parse `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(text: &str) -> Result<ServeAddr, ProtocolError> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ProtocolError::Corrupt("empty unix socket path".into()));
            }
            Ok(ServeAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(ProtocolError::Corrupt("empty tcp address".into()));
            }
            Ok(ServeAddr::Tcp(addr.to_string()))
        } else {
            Err(ProtocolError::Corrupt(format!(
                "address `{text}` must start with `unix:` or `tcp:`"
            )))
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ServeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// The two mapped snapshot shapes a store can hold.
#[derive(Debug)]
enum StoreKind {
    /// One [`MmapSnapshot`], served through the shared-snapshot detectors.
    Shared(MmapSnapshot),
    /// One [`MmapShardedSnapshot`], served with one worker per fragment.
    Sharded(MmapShardedSnapshot),
}

/// The mapped snapshot a server (or one epoch of a server) holds — shared
/// or sharded, auto-detected — plus the path it was mapped from.
#[derive(Debug)]
pub struct SnapshotStore {
    path: PathBuf,
    kind: StoreKind,
    /// Compiled match plans for this mapping, shared by every session that
    /// reads it.  A compaction publishes a *new* store (hence a fresh,
    /// empty cache keyed to the new epoch) — stale plans can never leak
    /// across an epoch switch.
    plan_cache: PlanCache,
}

impl SnapshotStore {
    /// Map `path`, accepting either snapshot kind.
    pub fn open(path: &Path) -> Result<SnapshotStore, PersistError> {
        let kind = match MmapSnapshot::load(path) {
            Ok(snapshot) => StoreKind::Shared(snapshot),
            Err(PersistError::WrongKind { .. }) => {
                StoreKind::Sharded(MmapShardedSnapshot::load(path)?)
            }
            Err(e) => return Err(e),
        };
        let epoch = match &kind {
            StoreKind::Shared(s) => s.epoch(),
            StoreKind::Sharded(s) => s.epoch(),
        };
        Ok(SnapshotStore {
            path: path.to_path_buf(),
            kind,
            plan_cache: PlanCache::for_epoch(epoch),
        })
    }

    /// The plan cache every session on this mapping compiles into.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The file this store is mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The epoch recorded in the mapped file's header.
    pub fn epoch(&self) -> u64 {
        match &self.kind {
            StoreKind::Shared(s) => s.epoch(),
            StoreKind::Sharded(s) => s.epoch(),
        }
    }

    /// Nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(s) => GraphView::node_count(s),
            StoreKind::Sharded(s) => GraphView::node_count(s.global()),
        }
    }

    /// Edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(s) => GraphView::edge_count(s),
            StoreKind::Sharded(s) => GraphView::edge_count(s.global()),
        }
    }

    /// Fragments (0 for a shared snapshot).
    pub fn fragment_count(&self) -> usize {
        match &self.kind {
            StoreKind::Shared(_) => 0,
            StoreKind::Sharded(s) => s.fragment_count(),
        }
    }

    /// Merge `net` into this store's file and map the result: the next
    /// epoch, same snapshot kind, stamped `epoch() + 1`.
    fn compact_into(&self, net: &BatchUpdate, out_path: &Path) -> Result<SnapshotStore, String> {
        let writer = CompactionWriter::new();
        let bytes = match &self.kind {
            StoreKind::Shared(s) => writer.encode(s, net, s.epoch() + 1),
            StoreKind::Sharded(s) => writer.encode_sharded(s, net, s.epoch() + 1),
        }
        .map_err(|e| e.to_string())?;
        std::fs::write(out_path, &bytes)
            .map_err(|e| format!("write {}: {e}", out_path.display()))?;
        SnapshotStore::open(out_path).map_err(|e| e.to_string())
    }
}

/// Serving knobs beyond the detector configuration.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Compact automatically once a session's *accumulated* unit updates
    /// reach this count (checked after each absorbed batch).  Raw size,
    /// not net: the per-batch overlay bookkeeping cost grows with the raw
    /// operation sequence, so an insert/delete churn workload (net ≈ 0)
    /// must still trigger — compacting resets it to an empty overlay
    /// either way.  `None` disables auto-compaction; `COMPACT` frames
    /// always work.
    pub compact_after: Option<u64>,
    /// Write a pretty-JSON metrics-registry snapshot to this path
    /// periodically and once more on shutdown.  `None` disables dumping;
    /// the `METRICS` frame works either way.
    pub metrics_dump: Option<PathBuf>,
    /// How often the dump file is rewritten (default 30 s).  Ignored
    /// without `metrics_dump`.
    pub metrics_interval: Option<Duration>,
    /// Worker threads executing requests (default
    /// `min(available_parallelism, 8)`, at least 2).  This — not the
    /// connection count — bounds the daemon's OS threads: a thousand idle
    /// connections cost a thousand fds and read buffers, never a thousand
    /// stacks.
    pub worker_threads: Option<usize>,
    /// Per-connection write-queue high-water mark in bytes (default
    /// 1 MiB).  A worker streaming `ΔVio` to a slow reader blocks once the
    /// queue crosses this mark — suspending *that session's* expansion
    /// until the reactor drains the queue below a quarter of it — so one
    /// slow reader can never balloon daemon memory or stall the loop.
    pub write_buffer_limit: Option<usize>,
}

/// Shared server state behind the `Arc` every session thread clones.
struct Shared {
    /// The currently published snapshot epoch.  Sessions clone the `Arc`
    /// at their next message boundary; superseded mappings stay alive —
    /// and mapped — exactly as long as a session still holds them.
    current: Mutex<Arc<SnapshotStore>>,
    /// The path the daemon was started on; compacted epochs are written
    /// next to it as `<stem>.e<epoch>-<seq>.ngds`.
    snapshot_path: PathBuf,
    /// Epoch files this server created (unlinked on drop).
    owned_files: Mutex<Vec<PathBuf>>,
    /// The immutable server-wide default rule set; sessions that want a
    /// different one swap their own copy via the `RULES` frame.
    sigma: Arc<RuleSet>,
    detector: DetectorConfig,
    options: ServeOptions,
    server_name: String,
    /// When the daemon started (uptime reporting).
    started: Instant,
    shutdown: AtomicBool,
    /// Wakes sleepers (the metrics-dump loop) the moment shutdown is
    /// signalled, so no thread polls the flag on a timer.
    shutdown_mu: Mutex<bool>,
    shutdown_cv: Condvar,
    sessions_active: AtomicUsize,
    sessions_total: AtomicU64,
    updates_served: AtomicU64,
    violations_streamed: AtomicU64,
    compactions: AtomicU64,
    /// Distinguishes epoch files when concurrent compactions race from the
    /// same base epoch — overwriting a path that is still mapped would be
    /// a SIGBUS hazard, so every compaction writes a fresh file.
    file_seq: AtomicU64,
}

impl Shared {
    fn published(&self) -> Arc<SnapshotStore> {
        Arc::clone(&self.current.lock().expect("current epoch lock"))
    }

    /// Set the shutdown flag and wake every sleeper watching it.
    fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        *self.shutdown_mu.lock().expect("shutdown lock") = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running detection daemon; dropping it **without** calling
/// [`Server::wait`] / [`Server::shutdown`] aborts the event loop.
pub struct Server {
    shared: Arc<Shared>,
    /// The reactor thread (Unix) or the fallback accept loop (elsewhere).
    reactor: Option<std::thread::JoinHandle<()>>,
    /// Pokes the reactor's poller awake from outside (shutdown, drop).
    #[cfg(unix)]
    notify: Arc<ReactorShared>,
    /// The periodic `--metrics-dump` writer, when configured.
    metrics_dump: Option<std::thread::JoinHandle<()>>,
    local: ServeAddr,
    /// Unix socket path to unlink once the server is done.
    cleanup: Option<PathBuf>,
    /// The daemon registry this server appended its address to.
    registry: PathBuf,
    /// The exact line to strip from the registry on graceful shutdown.
    registry_line: String,
}

impl Server {
    /// Bind `addr` and start serving `store` with `sigma` as the default
    /// rule set and default [`ServeOptions`].
    ///
    /// `tcp:host:0` binds an ephemeral port; the actual address is
    /// reported by [`Server::local_addr`].
    pub fn start(
        store: SnapshotStore,
        sigma: RuleSet,
        addr: &ServeAddr,
        detector: DetectorConfig,
    ) -> Result<Server, ProtocolError> {
        Server::start_with(store, sigma, addr, detector, ServeOptions::default())
    }

    /// As [`Server::start`], with explicit [`ServeOptions`].
    pub fn start_with(
        store: SnapshotStore,
        sigma: RuleSet,
        addr: &ServeAddr,
        detector: DetectorConfig,
        options: ServeOptions,
    ) -> Result<Server, ProtocolError> {
        let snapshot_path = store.path().to_path_buf();
        // GC **before** the bind: a daemon restarted on the same unix
        // address would otherwise answer its crashed predecessor's
        // liveness ping itself and judge the leaked epoch files owned.
        gc_stale_epoch_files(&snapshot_path);
        let shared = Arc::new(Shared {
            current: Mutex::new(Arc::new(store)),
            snapshot_path,
            owned_files: Mutex::new(Vec::new()),
            sigma: Arc::new(sigma),
            detector,
            options,
            server_name: format!("ngd-serve/{}", env!("CARGO_PKG_VERSION")),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            shutdown_mu: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            sessions_active: AtomicUsize::new(0),
            sessions_total: AtomicU64::new(0),
            updates_served: AtomicU64::new(0),
            violations_streamed: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            file_seq: AtomicU64::new(0),
        });
        let (listener, local, cleanup) = AnyListener::bind(addr)?;
        // Register the *resolved* address (ephemeral TCP ports included)
        // so a later startup's GC can ping this daemon.  Best-effort: a
        // read-only directory costs the GC safety net, not the server.
        let registry = daemon_registry_path(&shared.snapshot_path);
        let registry_line = local.to_string();
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&registry)
        {
            let _ = writeln!(file, "{registry_line}");
        }
        #[cfg(unix)]
        let notify = Arc::new(ReactorShared::new().map_err(|e| ProtocolError::Io(e.to_string()))?);
        #[cfg(unix)]
        let reactor = {
            let reactor_shared = Arc::clone(&shared);
            let reactor_notify = Arc::clone(&notify);
            std::thread::Builder::new()
                .name("ngd-serve-reactor".into())
                .spawn(move || {
                    if let Err(e) = reactor_loop(reactor_shared, reactor_notify, listener) {
                        eprintln!("ngd-serve: reactor failed: {e}");
                    }
                })
                .map_err(|e| ProtocolError::Io(e.to_string()))?
        };
        #[cfg(not(unix))]
        let reactor = {
            let accept_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ngd-serve-accept".into())
                .spawn(move || accept_loop(accept_shared, listener))
                .map_err(|e| ProtocolError::Io(e.to_string()))?
        };
        let metrics_dump = match shared.options.metrics_dump.clone() {
            Some(path) => {
                let interval = shared
                    .options
                    .metrics_interval
                    .unwrap_or(Duration::from_secs(30));
                let dump_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("ngd-serve-metrics".into())
                        .spawn(move || metrics_dump_loop(dump_shared, path, interval))
                        .map_err(|e| ProtocolError::Io(e.to_string()))?,
                )
            }
            None => None,
        };
        Ok(Server {
            shared,
            reactor: Some(reactor),
            #[cfg(unix)]
            notify,
            metrics_dump,
            local,
            cleanup,
            registry,
            registry_line,
        })
    }

    /// Poke the event loop awake so it observes a state change made from
    /// outside (shutdown request, drop).
    fn wake(&self) {
        #[cfg(unix)]
        self.notify.waker.wake();
    }

    /// The address the server actually listens on (ephemeral TCP ports
    /// resolved).
    pub fn local_addr(&self) -> &ServeAddr {
        &self.local
    }

    /// The epoch the server currently publishes.
    pub fn published_epoch(&self) -> u64 {
        self.shared.published().epoch()
    }

    /// Has a `SHUTDOWN` frame (or [`Server::shutdown`]) been processed?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (via a client `SHUTDOWN` frame),
    /// then join the event loop and its worker pool.
    pub fn wait(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }

    /// Request shutdown and join the event loop and its worker pool.
    pub fn shutdown(mut self) {
        self.shared.signal_shutdown();
        self.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.signal_shutdown();
        self.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_dump.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
        // Epoch files this daemon created are scratch state: every session
        // has drained by now, so the mappings are gone and the files can go
        // too (the operator's original snapshot is never touched).
        for path in self
            .shared
            .owned_files
            .lock()
            .expect("owned files")
            .drain(..)
        {
            let _ = std::fs::remove_file(path);
        }
        // Deregister: strip exactly one copy of our line so the registry
        // only ever names daemons that died *un*gracefully.
        if let Ok(text) = std::fs::read_to_string(&self.registry) {
            let mut stripped = false;
            let remaining: Vec<&str> = text
                .lines()
                .filter(|line| {
                    if !stripped && *line == self.registry_line {
                        stripped = true;
                        false
                    } else {
                        !line.trim().is_empty()
                    }
                })
                .collect();
            if remaining.is_empty() {
                let _ = std::fs::remove_file(&self.registry);
            } else {
                let _ = std::fs::write(&self.registry, remaining.join("\n") + "\n");
            }
        }
    }
}

/// The daemon registry kept next to `snapshot_path`: one listen address
/// per line (`unix:…` / `tcp:…`), appended on startup, stripped on
/// graceful shutdown.
fn daemon_registry_path(snapshot_path: &Path) -> PathBuf {
    let name = snapshot_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    snapshot_path.with_file_name(format!("{name}.daemons"))
}

/// Is `name` a compacted-epoch sibling of a snapshot with this `stem` —
/// i.e. `<stem>.e<digits>-<digits>.ngds` as written by `compact_session`?
fn is_epoch_file_name(name: &str, stem: &str) -> bool {
    let Some(rest) = name.strip_prefix(stem) else {
        return false;
    };
    let Some(rest) = rest.strip_prefix(".e") else {
        return false;
    };
    let Some(body) = rest.strip_suffix(".ngds") else {
        return false;
    };
    let Some((epoch, seq)) = body.split_once('-') else {
        return false;
    };
    !epoch.is_empty()
        && !seq.is_empty()
        && epoch.bytes().all(|b| b.is_ascii_digit())
        && seq.bytes().all(|b| b.is_ascii_digit())
}

/// Does anything answer a connect on `addr`?  Same decisive-connect rule
/// as the stale-unix-socket check in [`AnyListener::bind`]: only a refused
/// connection (or a missing socket file) proves nothing listens; any
/// murkier failure could be a live-but-busy daemon, so it counts as alive.
fn daemon_answers(addr: &ServeAddr) -> bool {
    match addr {
        ServeAddr::Unix(path) => {
            #[cfg(unix)]
            {
                use std::io::ErrorKind;
                match std::os::unix::net::UnixStream::connect(path) {
                    Ok(_) => true,
                    Err(e) => {
                        !matches!(e.kind(), ErrorKind::ConnectionRefused | ErrorKind::NotFound)
                    }
                }
            }
            #[cfg(not(unix))]
            {
                // A unix line on a non-unix host cannot be pinged; keeping
                // the files beats deleting a reachable daemon's state.
                let _ = path;
                true
            }
        }
        ServeAddr::Tcp(spec) => match TcpStream::connect(spec) {
            Ok(_) => true,
            Err(e) => e.kind() != std::io::ErrorKind::ConnectionRefused,
        },
    }
}

/// Unlink epoch files leaked next to `snapshot_path` by crashed daemons.
///
/// Reads the sibling registry, pings every recorded address, and prunes
/// the lines that no longer answer.  Only when **no** registered daemon
/// answers are the `<stem>.e<epoch>-<seq>.ngds` siblings unlinked (and the
/// registry removed with them): the registry does not say which daemon
/// wrote which file, so while any answers every epoch file is presumed
/// owned.  Unparseable lines are kept and treated as alive — deleting
/// mapped files on a guess would SIGBUS a reader.  Best-effort and racy by
/// design (two daemons starting at once may both rewrite the registry);
/// the appends on startup re-establish every live daemon's line.
fn gc_stale_epoch_files(snapshot_path: &Path) {
    let registry = daemon_registry_path(snapshot_path);
    let Ok(text) = std::fs::read_to_string(&registry) else {
        return;
    };
    let recorded: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .collect();
    let live: Vec<&str> = recorded
        .iter()
        .copied()
        .filter(|line| match ServeAddr::parse(line) {
            Ok(addr) => daemon_answers(&addr),
            Err(_) => true,
        })
        .collect();
    if live.is_empty() {
        let stem = snapshot_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("snapshot");
        let dir = match snapshot_path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_some_and(|n| is_epoch_file_name(n, stem)) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let _ = std::fs::remove_file(&registry);
    } else if live.len() < recorded.len() {
        let _ = std::fs::write(&registry, live.join("\n") + "\n");
    }
}

enum AnyListener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    Tcp(TcpListener),
}

enum AnyStream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
            AnyStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
            AnyStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
            AnyStream::Tcp(s) => s.flush(),
        }
    }
}

impl AnyListener {
    fn bind(addr: &ServeAddr) -> Result<(AnyListener, ServeAddr, Option<PathBuf>), ProtocolError> {
        match addr {
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    // A socket file left by a killed daemon would block the
                    // bind forever.  Ping it first: if something answers the
                    // connect, a live daemon owns the path and we must NOT
                    // steal it; if nothing answers, the file is stale and is
                    // unlinked so the bind can proceed.
                    if path.exists() {
                        match std::os::unix::net::UnixStream::connect(path) {
                            Ok(_) => {
                                return Err(ProtocolError::Io(format!(
                                    "{} is in use by a live daemon (connect succeeded); \
                                     refusing to steal the socket",
                                    path.display()
                                )));
                            }
                            // Only a refused connection proves nothing is
                            // listening.  Any other failure (EAGAIN from a
                            // momentarily full accept backlog, EACCES, …)
                            // could be a live daemon — refuse to unlink on
                            // a guess.
                            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                                let _ = std::fs::remove_file(path);
                            }
                            Err(e) => {
                                return Err(ProtocolError::Io(format!(
                                    "{} did not answer the liveness ping decisively \
                                     ({e}); refusing to unlink it — remove the socket \
                                     manually if the daemon is really gone",
                                    path.display()
                                )));
                            }
                        }
                    }
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| ProtocolError::Io(format!("bind {}: {e}", path.display())))?;
                    listener
                        .set_nonblocking(true)
                        .map_err(|e| ProtocolError::Io(e.to_string()))?;
                    Ok((
                        AnyListener::Unix(listener),
                        ServeAddr::Unix(path.clone()),
                        Some(path.clone()),
                    ))
                }
                #[cfg(not(unix))]
                {
                    Err(ProtocolError::Io(format!(
                        "unix sockets are not available on this host (asked for {})",
                        path.display()
                    )))
                }
            }
            ServeAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)
                    .map_err(|e| ProtocolError::Io(format!("bind {spec}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| ProtocolError::Io(e.to_string()))?;
                Ok((
                    AnyListener::Tcp(listener),
                    ServeAddr::Tcp(local.to_string()),
                    None,
                ))
            }
        }
    }

    /// Accept one connection for the fallback thread-per-connection path:
    /// the stream is switched back to blocking for `read_frame`.
    #[cfg(not(unix))]
    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
        }
    }

    /// Accept one connection for the reactor: the stream stays (becomes)
    /// non-blocking, as every reactor read/write must be.
    #[cfg(unix)]
    fn accept_nonblocking(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyListener::Unix(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(true);
                AnyStream::Unix(s)
            }),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(true);
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            AnyListener::Unix(l) => l.as_raw_fd(),
            AnyListener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

#[cfg(unix)]
impl AnyStream {
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            AnyStream::Unix(s) => s.as_raw_fd(),
            AnyStream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

/// The `--metrics-dump` writer: rewrite `path` with a pretty-JSON registry
/// snapshot every `interval`, and once more on shutdown so the final state
/// of a graceful exit is always on disk.  Sleeps on the shutdown condvar —
/// a shutdown wakes it immediately, and an idle daemon never spins a
/// polling timer.
fn metrics_dump_loop(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut guard = shared.shutdown_mu.lock().expect("shutdown lock");
    while !*guard {
        let (g, timeout) = shared
            .shutdown_cv
            .wait_timeout(guard, interval)
            .expect("shutdown lock");
        guard = g;
        if !*guard && timeout.timed_out() {
            drop(guard);
            write_metrics_dump(&path);
            guard = shared.shutdown_mu.lock().expect("shutdown lock");
        }
    }
    drop(guard);
    write_metrics_dump(&path);
}

/// Best-effort dump-file rewrite (a read-only directory costs the dump,
/// not the daemon).
fn write_metrics_dump(path: &Path) {
    let snapshot = ngd_obs::global().snapshot();
    if let Err(e) = std::fs::write(path, ngd_obs::render_json_pretty(&snapshot)) {
        eprintln!(
            "ngd-serve: cannot write metrics dump {}: {e}",
            path.display()
        );
    }
}

/// Total request bytes read off client connections.
static BYTES_IN: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.bytes.in");
/// Total response bytes written to client connections.
static BYTES_OUT: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.bytes.out");
/// Sessions accepted since startup (mirrors `Shared::sessions_total`).
static SESSIONS_TOTAL: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.sessions.total");
/// Sessions currently connected (mirrors `Shared::sessions_active`).
static SESSIONS_ACTIVE: ngd_obs::LazyGauge = ngd_obs::LazyGauge::new("serve.sessions.active");
/// Epoch switches published (mirrors `Shared::compactions`).
static EPOCH_SWITCHES: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.epoch.switches");
/// Sessions successfully re-rooted onto a newly published epoch.
static SESSION_REBASES: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.session.rebases");
/// `EPOCH_SWITCHED` notices pushed to clients.
static SWITCH_NOTICES: ngd_obs::LazyCounter =
    ngd_obs::LazyCounter::new("serve.epoch.switched_notices");
/// Poller wake-ups of the reactor loop.
static LOOP_ITERATIONS: ngd_obs::LazyCounter = ngd_obs::LazyCounter::new("serve.loop.iterations");
/// Readiness events delivered across all reactor wake-ups; the ratio to
/// `serve.loop.iterations` is the loop's batching factor under load.
static LOOP_READY_EVENTS: ngd_obs::LazyCounter =
    ngd_obs::LazyCounter::new("serve.loop.ready_events");
/// Times a worker blocked on a connection's full write queue (once per
/// stall, not per retry) — a rising rate means slow readers.
static BACKPRESSURE_STALLS: ngd_obs::LazyCounter =
    ngd_obs::LazyCounter::new("serve.backpressure.stalls");
/// Requests parked in the worker-pool queue right now.
static QUEUE_DEPTH: ngd_obs::LazyGauge = ngd_obs::LazyGauge::new("serve.queue.depth");
/// Nanoseconds from accepting an `UPDATE` to handing its first violation
/// to the wire — the latency win of streaming `ΔVio` *during* expansion.
static FIRST_VIO_NS: ngd_obs::LazyHistogram = ngd_obs::LazyHistogram::new("serve.first_vio.ns");

/// A transparent byte-accounting wrapper around a session's stream: every
/// read feeds `serve.bytes.in`, every write `serve.bytes.out`.  (The
/// reactor path counts at the socket instead; this serves the fallback.)
#[cfg(not(unix))]
struct CountingStream<S> {
    inner: S,
}

#[cfg(not(unix))]
impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        BYTES_IN.add(n as u64);
        Ok(n)
    }
}

#[cfg(not(unix))]
impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        BYTES_OUT.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The metric segment for a request frame kind (`serve.frame.<segment>.*`).
fn frame_metric_name(kind: u32) -> Option<&'static str> {
    Some(match kind {
        frame::HELLO => "hello",
        frame::RULES => "rules",
        frame::UPDATE => "update",
        frame::QUERY => "query",
        frame::STATS => "stats",
        frame::RESET => "reset",
        frame::SHUTDOWN => "shutdown",
        frame::COMPACT => "compact",
        frame::EPOCH => "epoch",
        frame::METRICS => "metrics",
        _ => return None,
    })
}

/// Counts a request on construction and records its latency on drop, so
/// the sample lands even when the dispatch arm bails early with an error
/// reply.  Two registry lookups per request — nowhere near the per-frame
/// byte path.
struct FrameTimer {
    name: &'static str,
    start: Instant,
}

impl FrameTimer {
    fn start(kind: u32) -> Option<FrameTimer> {
        if !ngd_obs::enabled() {
            return None;
        }
        let name = frame_metric_name(kind)?;
        ngd_obs::global()
            .counter(&format!("serve.frame.{name}.count"))
            .inc();
        Some(FrameTimer {
            name,
            start: Instant::now(),
        })
    }
}

impl Drop for FrameTimer {
    fn drop(&mut self) {
        ngd_obs::global()
            .histogram(&format!("serve.frame.{}.latency_ns", self.name))
            .record_duration(self.start.elapsed());
    }
}

/// Default per-connection write-queue high-water mark (1 MiB).
const DEFAULT_WRITE_BUFFER_LIMIT: usize = 1 << 20;

/// Default worker-pool size: one per core up to 8, at least 2 (so one
/// long expansion never monopolises the daemon).
#[cfg(unix)]
fn default_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// What a finished request means for its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Park the session and serve the next frame.
    KeepAlive,
    /// Flush queued answers, then close (SHUTDOWN's reply, fatal errors).
    Close,
}

/// Everything a connection's requests operate on: the detection session
/// plus its rule set (starts as the server-wide default; `RULES` swaps
/// it).  Parked on the connection between frames, moved into a worker for
/// the duration of one request.
struct SessionState {
    ctx: SessionCtx,
    sigma: Arc<RuleSet>,
}

impl SessionState {
    fn new(shared: &Shared) -> SessionState {
        SessionState {
            ctx: SessionCtx::new(shared.published()),
            sigma: Arc::clone(&shared.sigma),
        }
    }
}

/// Where a worker's response frames go: the reactor path queues bytes on
/// the connection's write buffer (back-pressure applies); the fallback
/// path writes straight to the blocking stream.
enum FrameSink<'a> {
    #[cfg(unix)]
    Queued(&'a Arc<ConnIo>),
    #[cfg(not(unix))]
    Direct(&'a mut dyn Write),
}

impl FrameSink<'_> {
    fn send(&mut self, kind: u32, payload: &[u8]) -> Result<(), ProtocolError> {
        match self {
            #[cfg(unix)]
            FrameSink::Queued(io) => io.send(kind, payload),
            #[cfg(not(unix))]
            FrameSink::Direct(w) => write_frame(w, kind, payload),
        }
    }

    /// Send an `ERROR` frame (best-effort — the peer may already be gone).
    fn send_error(&mut self, code: u32, message: String) {
        let payload = ErrorResponse { code, message }.encode();
        let _ = self.send(frame::ERROR, &payload);
    }

    /// The concurrent connection handle — what lets detect workers stream
    /// `ΔVio` chunks while the expansion still runs.
    #[cfg(unix)]
    fn conn_io(&self) -> &ConnIo {
        match self {
            FrameSink::Queued(io) => io,
        }
    }
}

/// Stream a violation iterator as bounded `VIO_CHUNK` frames, encoding
/// each chunk straight from the borrowed set (no per-violation clones).
fn stream_violations<'v>(
    sink: &mut FrameSink<'_>,
    side: Side,
    violations: impl Iterator<Item = &'v Violation>,
) -> Result<u64, ProtocolError> {
    let mut total = 0u64;
    let mut chunk: Vec<&'v Violation> = Vec::with_capacity(VIO_CHUNK_LEN);
    for violation in violations {
        chunk.push(violation);
        if chunk.len() == VIO_CHUNK_LEN {
            total += chunk.len() as u64;
            sink.send(frame::VIO_CHUNK, &VioChunk::encode_refs(side, &chunk))?;
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        total += chunk.len() as u64;
        sink.send(frame::VIO_CHUNK, &VioChunk::encode_refs(side, &chunk))?;
    }
    Ok(total)
}

// ---------------------------------------------------------------------------
// Reactor path (Unix): event loop + bounded worker pool
// ---------------------------------------------------------------------------

/// State the reactor shares with worker threads and the [`Server`] handle:
/// the waker that interrupts a blocked `Poller::wait`, plus the two
/// mailboxes workers fill (flush requests and finished requests).
#[cfg(unix)]
struct ReactorShared {
    waker: Waker,
    /// Connections whose write queues gained bytes since the last pass.
    flush: Mutex<Vec<u64>>,
    /// Finished requests waiting for the reactor to re-park their
    /// sessions.
    completions: Mutex<Vec<Completion>>,
}

#[cfg(unix)]
impl ReactorShared {
    fn new() -> std::io::Result<ReactorShared> {
        Ok(ReactorShared {
            waker: Waker::new()?,
            flush: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
        })
    }

    fn request_flush(&self, token: u64) {
        let mut flush = self.flush.lock().expect("flush list lock");
        if !flush.contains(&token) {
            flush.push(token);
        }
        drop(flush);
        self.waker.wake();
    }

    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion list lock")
            .push(completion);
        self.waker.wake();
    }
}

/// The write side of one connection, shared between the reactor (which
/// drains it to the socket) and whichever worker currently serves the
/// connection (which fills it).
#[cfg(unix)]
struct ConnIo {
    token: u64,
    reactor: Arc<ReactorShared>,
    /// High-water mark: [`ConnIo::send`] blocks while `total` is at or
    /// above this.
    limit: usize,
    write: Mutex<WriteBuf>,
    /// Signalled when the queue drains below a quarter of `limit` (and on
    /// death), releasing a stalled worker.
    drained: Condvar,
    dead: AtomicBool,
}

#[cfg(unix)]
#[derive(Default)]
struct WriteBuf {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue[0]` already written to the socket.
    front_pos: usize,
    /// Unwritten bytes across the whole queue.
    total: usize,
}

#[cfg(unix)]
impl ConnIo {
    /// Queue one frame for the reactor to write, blocking while the
    /// connection's write queue is above its high-water mark.  This is the
    /// back-pressure path: a slow reader suspends *this session's*
    /// producer (a worker or its detect threads), never the event loop.
    fn send(&self, kind: u32, payload: &[u8]) -> Result<(), ProtocolError> {
        let bytes = encode_frame(kind, payload)?;
        let mut buf = self.write.lock().expect("write queue lock");
        let mut stalled = false;
        while buf.total >= self.limit && !self.dead.load(Ordering::SeqCst) {
            if !stalled {
                BACKPRESSURE_STALLS.inc();
                stalled = true;
            }
            buf = self.drained.wait(buf).expect("write queue lock");
        }
        if self.dead.load(Ordering::SeqCst) {
            return Err(ProtocolError::Disconnected);
        }
        buf.total += bytes.len();
        buf.queue.push_back(bytes);
        drop(buf);
        self.reactor.request_flush(self.token);
        Ok(())
    }

    /// Queue bytes ignoring the high-water mark — reactor-only, for the
    /// ERROR answer on a broken stream (the reactor must never block).
    fn queue_unbounded(&self, bytes: Vec<u8>) {
        let mut buf = self.write.lock().expect("write queue lock");
        buf.total += bytes.len();
        buf.queue.push_back(bytes);
    }

    /// Mark the connection dead and release any stalled producer (it
    /// observes [`ProtocolError::Disconnected`] instead of blocking
    /// forever).  Taking the lock before notifying closes the window where
    /// a producer has checked `dead`, not yet parked, and would miss the
    /// wake-up.
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
        drop(self.write.lock().expect("write queue lock"));
        self.drained.notify_all();
    }
}

/// One request in flight from the reactor to the worker pool.
#[cfg(unix)]
struct Job {
    token: u64,
    kind: u32,
    payload: Vec<u8>,
    state: SessionState,
    io: Arc<ConnIo>,
}

/// A finished request on its way back to the reactor.
#[cfg(unix)]
struct Completion {
    token: u64,
    state: SessionState,
    disposition: Disposition,
}

#[cfg(unix)]
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// The bounded worker pool: `worker_threads` OS threads execute requests;
/// connections beyond that wait in the queue (`serve.queue.depth`), their
/// sockets exerting TCP back-pressure because the reactor keeps their
/// read interest disarmed while a request is outstanding.
#[cfg(unix)]
struct WorkerPool {
    inner: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

#[cfg(unix)]
impl WorkerPool {
    fn start(
        count: usize,
        shared: &Arc<Shared>,
        reactor: &Arc<ReactorShared>,
    ) -> std::io::Result<WorkerPool> {
        let inner = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(count);
        for _ in 0..count {
            let pool = Arc::clone(&inner);
            let shared = Arc::clone(shared);
            let reactor = Arc::clone(reactor);
            handles.push(
                std::thread::Builder::new()
                    .name("ngd-serve-worker".into())
                    .spawn(move || worker_loop(pool, shared, reactor))?,
            );
        }
        Ok(WorkerPool { inner, handles })
    }

    fn submit(&self, job: Job) {
        let mut queue = self.inner.queue.lock().expect("job queue lock");
        queue.push_back(job);
        QUEUE_DEPTH.set(queue.len() as i64);
        drop(queue);
        self.inner.ready.notify_one();
    }

    /// Stop after the queue drains and join every worker.
    fn join(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(unix)]
fn worker_loop(pool: Arc<PoolShared>, shared: Arc<Shared>, reactor: Arc<ReactorShared>) {
    loop {
        let job = {
            let mut queue = pool.queue.lock().expect("job queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    QUEUE_DEPTH.set(queue.len() as i64);
                    break Some(job);
                }
                if pool.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = pool.ready.wait(queue).expect("job queue lock");
            }
        };
        let Some(mut job) = job else { return };
        let disposition = {
            let _frame_timer = FrameTimer::start(job.kind);
            let mut sink = FrameSink::Queued(&job.io);
            match handle_request(&shared, &mut job.state, &mut sink, job.kind, &job.payload) {
                Ok(disposition) => disposition,
                // The sink failed (client gone mid-answer): nothing more
                // can be said on this connection.
                Err(_) => Disposition::Close,
            }
        };
        reactor.complete(Completion {
            token: job.token,
            state: job.state,
            disposition,
        });
    }
}

/// One connection as the reactor sees it.
#[cfg(unix)]
struct Connection {
    stream: AnyStream,
    /// Bytes read but not yet parsed into a frame.
    read_buf: Vec<u8>,
    io: Arc<ConnIo>,
    /// The parked session; `None` while a worker runs a request on it.
    state: Option<SessionState>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Close once the write queue drains.
    closing: bool,
    /// The last flush left unwritten bytes; keep write interest armed.
    want_write: bool,
}

#[cfg(unix)]
struct Reactor {
    shared: Arc<Shared>,
    notify: Arc<ReactorShared>,
    poller: Poller,
    conns: std::collections::HashMap<u64, Connection>,
    next_token: u64,
    limit: usize,
}

#[cfg(unix)]
const LISTENER_TOKEN: u64 = 0;
#[cfg(unix)]
const WAKER_TOKEN: u64 = 1;

/// The event loop: owns the listener and every connection fd, parses
/// frames incrementally, dispatches complete requests to the worker pool,
/// and drains per-connection write queues — never blocking on any one
/// peer.
#[cfg(unix)]
fn reactor_loop(
    shared: Arc<Shared>,
    notify: Arc<ReactorShared>,
    listener: AnyListener,
) -> std::io::Result<()> {
    let mut poller = Poller::new()?;
    poller.register(listener.raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    poller.register(notify.waker.fd(), WAKER_TOKEN, Interest::READ)?;
    let workers = shared
        .options
        .worker_threads
        .unwrap_or_else(default_worker_count)
        .max(1);
    let limit = shared
        .options
        .write_buffer_limit
        .unwrap_or(DEFAULT_WRITE_BUFFER_LIMIT)
        .max(1);
    let pool = WorkerPool::start(workers, &shared, &notify)?;
    let mut reactor = Reactor {
        shared,
        notify,
        poller,
        conns: std::collections::HashMap::new(),
        next_token: 2,
        limit,
    };
    let mut listener = Some(listener);
    let mut events = Vec::new();
    loop {
        // Shutdown: close the listener at once; exit when the last
        // connection drains.
        if reactor.shared.shutdown.load(Ordering::SeqCst) {
            if let Some(l) = listener.take() {
                let _ = reactor.poller.deregister(l.raw_fd());
                // Dropping the listener closes the socket.
            }
            if reactor.conns.is_empty() {
                break;
            }
        }
        events.clear();
        reactor.poller.wait(&mut events)?;
        LOOP_ITERATIONS.inc();
        LOOP_READY_EVENTS.add(events.len() as u64);
        for event in &events {
            match event.token {
                WAKER_TOKEN => reactor.notify.waker.drain(),
                LISTENER_TOKEN => {
                    if let Some(l) = listener.as_ref() {
                        reactor.accept_ready(l);
                    }
                }
                token => {
                    if event.readable {
                        reactor.on_readable(token, &pool);
                    }
                    if event.writable {
                        reactor.try_flush(token);
                    }
                }
            }
        }
        // Worker signals (completions, flush requests) arrive at any time;
        // the waker guarantees this pass happens promptly after each.
        reactor.drain_worker_signals(&pool);
    }
    pool.join();
    Ok(())
}

#[cfg(unix)]
impl Reactor {
    fn accept_ready(&mut self, listener: &AnyListener) {
        loop {
            match listener.accept_nonblocking() {
                Ok(stream) => {
                    let token = self.next_token;
                    self.next_token += 1;
                    let io = Arc::new(ConnIo {
                        token,
                        reactor: Arc::clone(&self.notify),
                        limit: self.limit,
                        write: Mutex::new(WriteBuf::default()),
                        drained: Condvar::new(),
                        dead: AtomicBool::new(false),
                    });
                    if self
                        .poller
                        .register(stream.raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        // Dropping the stream refuses this one connection;
                        // the daemon itself survives.
                        continue;
                    }
                    self.shared.sessions_total.fetch_add(1, Ordering::SeqCst);
                    self.shared.sessions_active.fetch_add(1, Ordering::SeqCst);
                    SESSIONS_TOTAL.inc();
                    SESSIONS_ACTIVE.add(1);
                    self.conns.insert(
                        token,
                        Connection {
                            stream,
                            read_buf: Vec::new(),
                            io,
                            state: Some(SessionState::new(&self.shared)),
                            interest: Interest::READ,
                            closing: false,
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn on_readable(&mut self, token: u64, pool: &WorkerPool) {
        let closed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.state.is_none() {
                // Draining to close, or a worker is busy (read interest is
                // disarmed; this event raced the modify).  Level-triggered
                // readiness will resurface once interest returns.
                return;
            }
            let mut chunk = [0u8; 64 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => break true,
                    Ok(n) => {
                        BYTES_IN.add(n as u64);
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() {
                            // Short read: the socket is (momentarily)
                            // drained; anything more re-notifies.
                            break false;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            }
        };
        if closed {
            self.teardown(token);
        } else {
            self.pump(token, pool);
        }
    }

    /// Parse and dispatch buffered frames while the connection is idle.
    /// At most one request per connection is ever in flight: once a frame
    /// is handed to the pool, parsing stops (and read interest drops)
    /// until its completion returns — pipelining clients queue in their
    /// socket buffers, which is exactly the back-pressure we want.
    fn pump(&mut self, token: u64, pool: &WorkerPool) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.state.is_none() || conn.read_buf.is_empty() {
                break;
            }
            match scan_frame(&conn.read_buf) {
                Ok(None) => break,
                Ok(Some((kind, payload, consumed))) => {
                    conn.read_buf.drain(..consumed);
                    let state = conn.state.take().expect("idle session state");
                    let io = Arc::clone(&conn.io);
                    pool.submit(Job {
                        token,
                        kind,
                        payload,
                        state,
                        io,
                    });
                }
                Err(e) => {
                    // Framing is broken — the stream cannot be trusted any
                    // further.  Answer why (best-effort, unbounded queue so
                    // the reactor cannot block) and close once it drains.
                    let payload = ErrorResponse {
                        code: err_code::BAD_REQUEST,
                        message: e.to_string(),
                    }
                    .encode();
                    if let Ok(bytes) = encode_frame(frame::ERROR, &payload) {
                        conn.io.queue_unbounded(bytes);
                    }
                    conn.closing = true;
                    self.try_flush(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Write queued bytes to the socket until it would block; tears the
    /// connection down on a write error or when a draining `closing`
    /// connection empties.
    fn try_flush(&mut self, token: u64) {
        let closed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut buf = conn.io.write.lock().expect("write queue lock");
            let mut broken = false;
            while let Some(front) = buf.queue.front() {
                let front_len = front.len();
                let n = match conn.stream.write(&front[buf.front_pos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                };
                BYTES_OUT.add(n as u64);
                buf.front_pos += n;
                buf.total -= n;
                if buf.front_pos == front_len {
                    buf.queue.pop_front();
                    buf.front_pos = 0;
                }
            }
            conn.want_write = !broken && !buf.queue.is_empty();
            // Low-water release: wake a producer stalled on back-pressure
            // once most of the queue has reached the socket.
            if buf.total < conn.io.limit / 4 {
                conn.io.drained.notify_all();
            }
            broken || (conn.closing && buf.queue.is_empty())
        };
        if closed {
            self.teardown(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Re-register the poller interest implied by the connection's state.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = Interest {
            read: conn.state.is_some() && !conn.closing,
            write: conn.want_write,
        };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.raw_fd(), token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Remove a connection: close the socket, release any stalled
    /// producer, drop the parked session (releasing its snapshot pin).  A
    /// session held by an in-flight worker is dropped when its completion
    /// arrives and finds the connection gone.
    fn teardown(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        conn.io.mark_dead();
        let _ = self.poller.deregister(conn.stream.raw_fd());
        self.shared.sessions_active.fetch_sub(1, Ordering::SeqCst);
        SESSIONS_ACTIVE.add(-1);
        // `conn` drops here: the stream's fd closes, and with it any
        // parked SessionState and its Arc<SnapshotStore>.
    }

    /// Drain worker mailboxes: re-park finished sessions (dispatching the
    /// next pipelined frame if one is already buffered) and flush
    /// connections whose queues gained bytes.
    fn drain_worker_signals(&mut self, pool: &WorkerPool) {
        loop {
            let completions = std::mem::take(
                &mut *self
                    .notify
                    .completions
                    .lock()
                    .expect("completion list lock"),
            );
            let flushes = std::mem::take(&mut *self.notify.flush.lock().expect("flush list lock"));
            if completions.is_empty() && flushes.is_empty() {
                break;
            }
            for completion in completions {
                self.on_completion(completion, pool);
            }
            for token in flushes {
                self.try_flush(token);
            }
        }
    }

    fn on_completion(&mut self, completion: Completion, pool: &WorkerPool) {
        let Completion {
            token,
            state,
            disposition,
        } = completion;
        let Some(conn) = self.conns.get_mut(&token) else {
            // Torn down mid-request: release the session (and its epoch
            // mapping) now.
            drop(state);
            return;
        };
        match disposition {
            Disposition::Close => {
                conn.closing = true;
                drop(state);
                self.try_flush(token);
            }
            Disposition::KeepAlive => {
                conn.state = Some(state);
                self.pump(token, pool);
            }
        }
    }
}

/// Server-side half of streaming ΔVio *during* expansion: the
/// violation-sink callback the detect run invokes from any of its worker
/// threads.  The first violation flushes immediately — first-violation
/// latency is the point — then full [`VIO_CHUNK_LEN`] chunks, leftovers at
/// [`VioStreamer::finish`].  A send failure (client gone) is remembered
/// and later offers are dropped: the detect run completes undisturbed, and
/// the worker tears the session down afterwards.
#[cfg(unix)]
struct VioStreamer<'a> {
    io: &'a ConnIo,
    started: Instant,
    state: Mutex<StreamerState>,
}

#[cfg(unix)]
#[derive(Default)]
struct StreamerState {
    added: Vec<Violation>,
    removed: Vec<Violation>,
    added_total: u64,
    removed_total: u64,
    sent_any: bool,
    error: Option<ProtocolError>,
}

#[cfg(unix)]
impl<'a> VioStreamer<'a> {
    fn new(io: &'a ConnIo) -> VioStreamer<'a> {
        VioStreamer {
            io,
            started: Instant::now(),
            state: Mutex::new(StreamerState::default()),
        }
    }

    /// The `VioSink` callback.  Blocking here (a full write queue) blocks
    /// the offering detect worker — and, via this lock, this session's
    /// other detect workers — which is the intended per-session
    /// back-pressure.
    fn offer(&self, side: VioSide, violation: &Violation) {
        let mut state = self.state.lock().expect("streamer lock");
        if state.error.is_some() {
            return;
        }
        match side {
            VioSide::Added => {
                state.added.push(violation.clone());
                state.added_total += 1;
            }
            VioSide::Removed => {
                state.removed.push(violation.clone());
                state.removed_total += 1;
            }
        }
        let side_len = match side {
            VioSide::Added => state.added.len(),
            VioSide::Removed => state.removed.len(),
        };
        if !state.sent_any || side_len >= VIO_CHUNK_LEN {
            if !state.sent_any {
                FIRST_VIO_NS.record_duration(self.started.elapsed());
            }
            state.sent_any = true;
            self.flush_side(&mut state, side);
        }
    }

    fn flush_side(&self, state: &mut StreamerState, side: VioSide) {
        let (wire_side, pending) = match side {
            VioSide::Added => (Side::Added, std::mem::take(&mut state.added)),
            VioSide::Removed => (Side::Removed, std::mem::take(&mut state.removed)),
        };
        if pending.is_empty() {
            return;
        }
        let refs: Vec<&Violation> = pending.iter().collect();
        let payload = VioChunk::encode_refs(wire_side, &refs);
        if let Err(e) = self.io.send(frame::VIO_CHUNK, &payload) {
            state.error = Some(e);
        }
    }

    /// Flush leftovers and return `(added_total, removed_total)`, or the
    /// first send error if the client died mid-stream.
    fn finish(self) -> Result<(u64, u64), ProtocolError> {
        {
            let mut state = self.state.lock().expect("streamer lock");
            if state.error.is_none() {
                let state_ref = &mut *state;
                self.flush_side(state_ref, VioSide::Added);
                if state_ref.error.is_none() {
                    self.flush_side(state_ref, VioSide::Removed);
                }
            }
        }
        let state = self.state.into_inner().expect("streamer lock");
        match state.error {
            Some(e) => Err(e),
            None => Ok((state.added_total, state.removed_total)),
        }
    }
}

// ---------------------------------------------------------------------------
// Fallback path (non-Unix): thread per connection, blocking frame I/O
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
fn accept_loop(shared: Arc<Shared>, listener: AnyListener) {
    let sessions: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let session_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("ngd-serve-session".into())
                    .spawn(move || {
                        session_shared.sessions_total.fetch_add(1, Ordering::SeqCst);
                        session_shared
                            .sessions_active
                            .fetch_add(1, Ordering::SeqCst);
                        SESSIONS_TOTAL.inc();
                        SESSIONS_ACTIVE.add(1);
                        let mut stream = stream;
                        let _ = run_session(&session_shared, &mut stream);
                        session_shared
                            .sessions_active
                            .fetch_sub(1, Ordering::SeqCst);
                        SESSIONS_ACTIVE.add(-1);
                    });
                match spawned {
                    Ok(handle) => sessions.lock().expect("session list lock").push(handle),
                    // Thread exhaustion rejects ONE connection (dropping the
                    // stream hangs it up); the daemon itself must survive.
                    Err(e) => eprintln!("ngd-serve: cannot spawn session thread: {e}"),
                }
                // Reap finished sessions as we go — a long-lived daemon
                // serving many short connections must not accumulate one
                // JoinHandle per connection until shutdown.
                let mut guard = sessions.lock().expect("session list lock");
                let mut live = Vec::with_capacity(guard.len());
                for handle in guard.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        live.push(handle);
                    }
                }
                *guard = live;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Drain: live sessions end when their connections close.
    for handle in sessions.into_inner().expect("session list lock") {
        let _ = handle.join();
    }
}

/// One connection's request loop (fallback path).
#[cfg(not(unix))]
fn run_session(shared: &Shared, raw: &mut AnyStream) -> Result<(), ProtocolError> {
    // All frame I/O goes through the byte-accounting wrapper; `raw` is not
    // touched again below.
    let stream = &mut CountingStream { inner: raw };
    let mut state = SessionState::new(shared);
    loop {
        let (kind, payload) = match read_frame(stream) {
            Ok(frame) => frame,
            Err(ProtocolError::Disconnected) => return Ok(()),
            Err(e) => {
                // Framing is broken — the stream cannot be trusted any
                // further.  Tell the peer why (best-effort) and close.
                let payload = ErrorResponse {
                    code: err_code::BAD_REQUEST,
                    message: e.to_string(),
                }
                .encode();
                let _ = write_frame(stream, frame::ERROR, &payload);
                return Err(e);
            }
        };
        let _frame_timer = FrameTimer::start(kind);
        let mut sink = FrameSink::Direct(stream);
        match handle_request(shared, &mut state, &mut sink, kind, &payload)? {
            Disposition::KeepAlive => {}
            Disposition::Close => return Ok(()),
        }
    }
}

/// One connection's session state, owning its epoch mapping.
///
/// The detect-crate session types borrow their base, so each request
/// re-materialises one around the `Arc` — a few moves, no graph copies —
/// which is what lets the connection swap epochs between requests.
struct SessionCtx {
    store: Arc<SnapshotStore>,
    accumulated: BatchUpdate,
    batches_applied: u64,
    /// An epoch switch to announce before the next answer.
    notice: Option<EpochNotice>,
    /// The published store a re-root already failed against — the session
    /// is *pinned* to its own mapping until a different epoch appears, and
    /// this memo keeps every subsequent frame from repeating the identical
    /// doomed O(|overlay|) attempt.
    reroot_failed_for: Option<Arc<SnapshotStore>>,
    /// An auto-compaction failed (full disk, pinned session, lost race):
    /// stop re-paying the O(|file|) merge on every batch.  Cleared when a
    /// re-root or RESET changes the session's situation; explicit `COMPACT`
    /// frames are never suppressed.
    auto_compact_disabled: bool,
}

impl SessionCtx {
    fn new(store: Arc<SnapshotStore>) -> SessionCtx {
        SessionCtx {
            store,
            accumulated: BatchUpdate::new(),
            batches_applied: 0,
            notice: None,
            reroot_failed_for: None,
            auto_compact_disabled: false,
        }
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The session's accumulated update as a canonical net batch.
    fn net(&self) -> BatchUpdate {
        match &self.store.kind {
            StoreKind::Shared(s) => DeltaOverlay::new(s, &self.accumulated).into_batch(),
            StoreKind::Sharded(s) => DeltaOverlay::new(s.global(), &self.accumulated).into_batch(),
        }
    }

    /// Apply one `ΔG` batch.  With `sink`, every fresh violation is also
    /// pushed through the callback *while the expansion runs* (the served
    /// streaming path); without it the delta is only collected into the
    /// returned report.
    fn apply(
        &mut self,
        sigma: &RuleSet,
        delta: &BatchUpdate,
        config: &DetectorConfig,
        sink: Option<VioSink<'_>>,
    ) -> Result<DeltaReport, UpdateError> {
        let accumulated = std::mem::take(&mut self.accumulated);
        let cache = self.store.plan_cache();
        let (result, accumulated, batches) = match &self.store.kind {
            StoreKind::Shared(s) => {
                let mut session = IncrementalSession::resume(s, accumulated, self.batches_applied);
                let result = match sink {
                    Some(sink) => session.apply_streaming(sigma, delta, config, cache, sink),
                    None => session.apply_with_cache(sigma, delta, config, cache),
                };
                let (accumulated, batches) = session.into_parts();
                (result, accumulated, batches)
            }
            StoreKind::Sharded(s) => {
                let mut session =
                    ShardedIncrementalSession::resume(s, accumulated, self.batches_applied);
                let result = match sink {
                    Some(sink) => session.apply_streaming(sigma, delta, config, cache, sink),
                    None => session.apply_with_cache(sigma, delta, config, cache),
                };
                let (accumulated, batches) = session.into_parts();
                (result, accumulated, batches)
            }
        };
        self.accumulated = accumulated;
        self.batches_applied = batches;
        result
    }

    fn detect_all(&self, sigma: &RuleSet) -> DetectionReport {
        let cache = self.store.plan_cache();
        match &self.store.kind {
            StoreKind::Shared(s) => IncrementalSession::resume(s, self.accumulated.clone(), 0)
                .detect_all_with_cache(sigma, cache),
            StoreKind::Sharded(s) => {
                ShardedIncrementalSession::resume(s, self.accumulated.clone(), 0)
                    .detect_all_with_cache(sigma, cache)
            }
        }
    }

    fn state_counts(&self) -> (usize, usize) {
        let (nodes, edges) = match &self.store.kind {
            StoreKind::Shared(s) => {
                let view = DeltaOverlay::new(s, &self.accumulated);
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
            StoreKind::Sharded(s) => {
                let view = DeltaOverlay::new(s.global(), &self.accumulated);
                (GraphView::node_count(&view), GraphView::edge_count(&view))
            }
        };
        (nodes, edges)
    }

    /// `(net pending nodes, net pending edge ops)` of the overlay.
    fn pending(&self) -> (u64, u64) {
        let net = self.net();
        (net.new_nodes.len() as u64, net.ops.len() as u64)
    }

    fn reset(&mut self) -> BatchUpdate {
        self.batches_applied = 0;
        // The re-root refusal was about the overlay being discarded here;
        // with an empty overlay the next message boundary can adopt the
        // published epoch after all.
        self.reroot_failed_for = None;
        self.auto_compact_disabled = false;
        std::mem::take(&mut self.accumulated)
    }

    /// At a message boundary: if a newer epoch has been published, try to
    /// re-root this session's overlay onto it.  On success the old `Arc`
    /// is released (unmapping the file once the last session lets go) and
    /// an `EPOCH_SWITCHED` notice is queued; on failure the session pins
    /// to its current mapping and keeps serving correctly from it.
    fn maybe_reroot(&mut self, shared: &Shared) {
        let current = shared.published();
        if Arc::ptr_eq(&current, &self.store) {
            return;
        }
        if self
            .reroot_failed_for
            .as_ref()
            .is_some_and(|failed| Arc::ptr_eq(failed, &current))
        {
            return;
        }
        let previous_epoch = self.epoch();
        let accumulated = std::mem::take(&mut self.accumulated);
        let rerooted: Result<BatchUpdate, BatchUpdate> = match (&self.store.kind, &current.kind) {
            (StoreKind::Shared(old), StoreKind::Shared(new)) => {
                let session = IncrementalSession::resume(old, accumulated, self.batches_applied);
                match session.rebase_onto(new) {
                    Ok(moved) => Ok(moved.into_parts().0),
                    Err(_) => Err(session.into_parts().0),
                }
            }
            (StoreKind::Sharded(old), StoreKind::Sharded(new)) => {
                let session =
                    ShardedIncrementalSession::resume(old, accumulated, self.batches_applied);
                match session.rebase_onto(new) {
                    Ok(moved) => Ok(moved.into_parts().0),
                    Err(_) => Err(session.into_parts().0),
                }
            }
            // A published epoch never changes kind; treat a mismatch as
            // un-carriable rather than corrupting the session.
            _ => Err(accumulated),
        };
        match rerooted {
            Ok(residue) => {
                self.notice = Some(EpochNotice {
                    epoch: current.epoch(),
                    previous_epoch,
                    carried_nodes: residue.new_nodes.len() as u64,
                    carried_ops: residue.ops.len() as u64,
                });
                self.accumulated = residue;
                self.store = current;
                self.reroot_failed_for = None;
                self.auto_compact_disabled = false;
                SESSION_REBASES.inc();
            }
            // The published epoch cannot absorb this overlay: keep serving
            // from the session's own (refcounted) mapping, and remember the
            // refusal so the attempt is not repeated until a *different*
            // epoch is published.  Clients observe the pinned state as
            // `epoch != published_epoch` in EPOCH/STATS.
            Err(kept) => {
                self.accumulated = kept;
                self.reroot_failed_for = Some(current);
            }
        }
    }
}

/// Fold `ctx`'s accumulated overlay into the next epoch file, publish the
/// new mapping server-wide, and re-root the requesting session onto it.
fn compact_session(shared: &Shared, ctx: &mut SessionCtx) -> Result<EpochResponse, String> {
    // A session not on the published epoch (pinned after a failed re-root)
    // would fail the compare-and-publish below anyway — bail before paying
    // the O(|file|) merge for it.
    if !Arc::ptr_eq(&shared.published(), &ctx.store) {
        return Err(format!(
            "session reads epoch {} but epoch {} is published; a pinned \
             session cannot publish a compaction",
            ctx.store.epoch(),
            shared.published().epoch()
        ));
    }
    let net = ctx.net();
    let new_epoch = ctx.store.epoch() + 1;
    let stem = shared
        .snapshot_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("snapshot");
    let seq = shared.file_seq.fetch_add(1, Ordering::SeqCst);
    let out_path = shared
        .snapshot_path
        .with_file_name(format!("{stem}.e{new_epoch}-{seq}.ngds"));
    let base = Arc::clone(&ctx.store);
    let new_store = Arc::new(ctx.store.compact_into(&net, &out_path)?);
    // Compare-and-publish: the merge happened outside the lock, so another
    // session may have published meanwhile.  Blindly overwriting would
    // silently drop that compaction's folded updates from the published
    // graph — instead the superseded attempt fails typed (and its freshly
    // written epoch file is unlinked, not orphaned); the requester
    // re-roots onto the winner at its next message boundary and can retry.
    {
        let mut current = shared.current.lock().expect("current epoch lock");
        if !Arc::ptr_eq(&current, &base) {
            let superseded_by = current.epoch();
            drop(current);
            drop(new_store);
            let _ = std::fs::remove_file(&out_path);
            return Err(format!(
                "superseded by a concurrent compaction (epoch {superseded_by} was \
                 published during the merge); re-rooted sessions may retry"
            ));
        }
        *current = Arc::clone(&new_store);
    }
    shared
        .owned_files
        .lock()
        .expect("owned files")
        .push(out_path);
    shared.compactions.fetch_add(1, Ordering::SeqCst);
    EPOCH_SWITCHES.inc();
    ctx.maybe_reroot(shared);
    Ok(EpochResponse {
        epoch: ctx.epoch(),
        published_epoch: new_store.epoch(),
        snapshot_nodes: ctx.store.node_count() as u64,
        snapshot_edges: ctx.store.edge_count() as u64,
        compactions: shared.compactions.load(Ordering::SeqCst),
    })
}

/// Serve one request frame against a session — the single dispatch shared
/// by the reactor's worker pool and the non-Unix fallback loop.
///
/// A returned `Err` means the *sink* failed (the client is gone): the
/// connection closes.  Malformed or rejected requests answer with typed
/// `ERROR` frames and keep the session alive.
fn handle_request(
    shared: &Shared,
    state: &mut SessionState,
    sink: &mut FrameSink<'_>,
    kind: u32,
    payload: &[u8],
) -> Result<Disposition, ProtocolError> {
    let SessionState { ctx, sigma } = state;
    // Message boundary: adopt a newly published epoch before touching
    // the request, and announce the switch ahead of the answer.
    ctx.maybe_reroot(shared);
    if let Some(notice) = ctx.notice.take() {
        SWITCH_NOTICES.inc();
        sink.send(frame::EPOCH_SWITCHED, &notice.encode())?;
    }
    match kind {
        frame::HELLO => {
            let _hello = match HelloRequest::decode(payload) {
                Ok(h) => h,
                Err(e) => {
                    sink.send_error(err_code::BAD_REQUEST, e.to_string());
                    return Ok(Disposition::KeepAlive);
                }
            };
            let response = HelloResponse {
                server: shared.server_name.clone(),
                node_count: ctx.store.node_count() as u64,
                edge_count: ctx.store.edge_count() as u64,
                fragment_count: ctx.store.fragment_count() as u32,
                rule_count: sigma.len() as u32,
                diameter: sigma.diameter() as u32,
            };
            sink.send(frame::HELLO_OK, &response.encode())?;
        }
        frame::RULES => {
            let request = match RulesRequest::decode(payload) {
                Ok(r) => r,
                Err(e) => {
                    sink.send_error(err_code::BAD_REQUEST, e.to_string());
                    return Ok(Disposition::KeepAlive);
                }
            };
            match ngd_lang::load_rules(&request.source) {
                Ok(rules) => {
                    let message = format!(
                        "compiled {} rule(s), dΣ = {}",
                        rules.len(),
                        rules.diameter()
                    );
                    *sigma = Arc::new(rules);
                    sink.send(frame::OK, &OkResponse { message }.encode())?;
                }
                Err(e) => {
                    sink.send_error(err_code::RULES_REJECTED, e.to_string());
                }
            }
        }
        frame::UPDATE => {
            let request = match UpdateRequest::decode(payload) {
                Ok(r) => r,
                Err(e) => {
                    sink.send_error(err_code::BAD_REQUEST, e.to_string());
                    return Ok(Disposition::KeepAlive);
                }
            };
            // Reactor path: stream `ΔVio` chunks *while* the expansion
            // runs — the first VIO_CHUNK leaves the socket before the
            // matchers finish.  An apply error happens during validation,
            // before any detection, so no chunk precedes the ERROR frame.
            #[cfg(unix)]
            let (result, streamed) = {
                let streamer = VioStreamer::new(sink.conn_io());
                let callback =
                    |side: VioSide, violation: &Violation| streamer.offer(side, violation);
                let result = ctx.apply(sigma, &request.batch, &shared.detector, Some(&callback));
                (result, streamer.finish())
            };
            #[cfg(not(unix))]
            let result = ctx.apply(sigma, &request.batch, &shared.detector, None);
            match result {
                Ok(report) => {
                    #[cfg(unix)]
                    let (added, removed) = streamed?;
                    #[cfg(not(unix))]
                    let (added, removed) = (
                        stream_violations(sink, Side::Added, report.delta.added.iter())?,
                        stream_violations(sink, Side::Removed, report.delta.removed.iter())?,
                    );
                    shared.updates_served.fetch_add(1, Ordering::SeqCst);
                    shared
                        .violations_streamed
                        .fetch_add(added + removed, Ordering::SeqCst);
                    let done = DoneResponse {
                        epoch: ctx.epoch(),
                        algorithm: report.algorithm.label().to_string(),
                        elapsed_nanos: report.elapsed.as_nanos() as u64,
                        processors: report.processors as u32,
                        neighborhood_nodes: report.neighborhood_nodes as u64,
                        added_total: added,
                        removed_total: removed,
                        stats: report.stats,
                        cost: report.cost,
                    };
                    sink.send(frame::UPDATE_DONE, &done.encode())?;
                    // Background compaction: once the accumulated raw
                    // op sequence crosses the threshold, fold it into
                    // a new epoch (raw, not net — churn that nets to
                    // nothing still inflates per-batch bookkeeping).
                    // Other sessions keep serving and pick the epoch
                    // up at their next message boundary.
                    if let Some(limit) = shared.options.compact_after {
                        if !ctx.auto_compact_disabled && ctx.accumulated.len() as u64 >= limit {
                            if let Err(e) = compact_session(shared, ctx) {
                                eprintln!(
                                    "ngd-serve: auto-compaction failed (disabled for                                          this session until it re-roots or resets): {e}"
                                );
                                ctx.auto_compact_disabled = true;
                            }
                        }
                    }
                }
                Err(e) => {
                    // Nothing was streamed (validation precedes detection);
                    // drop the (0, 0) totals and answer typed.
                    #[cfg(unix)]
                    let _ = streamed;
                    sink.send_error(err_code::UPDATE_REJECTED, e.to_string());
                }
            }
        }
        frame::QUERY => {
            let report = ctx.detect_all(sigma);
            let total = stream_violations(sink, Side::Added, report.violations.iter())?;
            shared
                .violations_streamed
                .fetch_add(total, Ordering::SeqCst);
            let done = DoneResponse {
                epoch: ctx.epoch(),
                algorithm: report.algorithm.label().to_string(),
                elapsed_nanos: report.elapsed.as_nanos() as u64,
                processors: report.processors as u32,
                neighborhood_nodes: 0,
                added_total: total,
                removed_total: 0,
                stats: report.stats,
                cost: report.cost,
            };
            sink.send(frame::QUERY_DONE, &done.encode())?;
        }
        frame::COMPACT => match compact_session(shared, ctx) {
            Ok(response) => {
                // The requester observed the switch through EPOCH_OK;
                // no separate notice needed.
                ctx.notice = None;
                sink.send(frame::EPOCH_OK, &response.encode())?;
            }
            Err(e) => {
                sink.send_error(err_code::COMPACT_FAILED, e);
            }
        },
        frame::EPOCH => {
            let response = EpochResponse {
                epoch: ctx.epoch(),
                published_epoch: shared.published().epoch(),
                snapshot_nodes: ctx.store.node_count() as u64,
                snapshot_edges: ctx.store.edge_count() as u64,
                compactions: shared.compactions.load(Ordering::SeqCst),
            };
            sink.send(frame::EPOCH_OK, &response.encode())?;
        }
        frame::STATS => {
            let (session_nodes, session_edges) = ctx.state_counts();
            let (pending_nodes, pending_edge_ops) = ctx.pending();
            let response = StatsResponse {
                epoch: ctx.epoch(),
                published_epoch: shared.published().epoch(),
                snapshot_nodes: ctx.store.node_count() as u64,
                snapshot_edges: ctx.store.edge_count() as u64,
                session_nodes: session_nodes as u64,
                session_edges: session_edges as u64,
                accumulated_ops: ctx.accumulated.len() as u64,
                pending_nodes,
                pending_edge_ops,
                batches_applied: ctx.batches_applied,
                fragment_count: ctx.store.fragment_count() as u32,
                sessions_active: shared.sessions_active.load(Ordering::SeqCst) as u32,
                sessions_total: shared.sessions_total.load(Ordering::SeqCst),
                updates_served: shared.updates_served.load(Ordering::SeqCst),
                violations_streamed: shared.violations_streamed.load(Ordering::SeqCst),
                plan_cache_hits: ctx.store.plan_cache().hits(),
                plan_cache_misses: ctx.store.plan_cache().misses(),
                uptime_secs: shared.started.elapsed().as_secs(),
            };
            sink.send(frame::STATS_OK, &response.encode())?;
        }
        frame::METRICS => {
            let response = MetricsResponse {
                snapshot: ngd_obs::global().snapshot(),
            };
            sink.send(frame::METRICS_OK, &response.encode())?;
        }
        frame::RESET => {
            let dropped = ctx.reset();
            let message = format!("dropped {} accumulated unit update(s)", dropped.len());
            sink.send(frame::OK, &OkResponse { message }.encode())?;
        }
        frame::SHUTDOWN => {
            shared.signal_shutdown();
            let message = "shutting down: accept loop stopped, sessions draining".to_string();
            sink.send(frame::OK, &OkResponse { message }.encode())?;
            return Ok(Disposition::Close);
        }
        other => {
            sink.send_error(
                err_code::BAD_REQUEST,
                ProtocolError::UnknownFrame { kind: other }.to_string(),
            );
        }
    }
    Ok(Disposition::KeepAlive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_file_name_matcher_is_exact() {
        assert!(is_epoch_file_name("snap.e1-0.ngds", "snap"));
        assert!(is_epoch_file_name("snap.e12-345.ngds", "snap"));
        // Wrong stem, missing sequence, non-digits, wrong extension.
        assert!(!is_epoch_file_name("other.e1-0.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1-.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e-0.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.ea-b.ngds", "snap"));
        assert!(!is_epoch_file_name("snap.e1-0.ngds.bak", "snap"));
        assert!(!is_epoch_file_name("snap.ngds", "snap"));
    }

    #[test]
    fn registry_sits_next_to_the_snapshot() {
        assert_eq!(
            daemon_registry_path(Path::new("/var/ngd/snap.ngds")),
            PathBuf::from("/var/ngd/snap.ngds.daemons")
        );
        assert_eq!(
            daemon_registry_path(Path::new("snap.ngds")),
            PathBuf::from("snap.ngds.daemons")
        );
    }
}
