//! Typed wire-protocol errors.
//!
//! Mirrors [`ngd_graph::persist::PersistError`]: every way a frame can be
//! damaged, stale or hostile maps to a distinct variant, so the corruption
//! battery can assert *which* defence fired and callers can tell an
//! operational error (socket died) from a protocol bug (bad frame) from a
//! server-side rejection ([`ProtocolError::Remote`]).

/// Errors raised while framing, parsing or exchanging protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// An operating-system error on the socket (connect / read / write).
    Io(String),
    /// The peer closed the connection cleanly between frames.
    Disconnected,
    /// A frame does not start with the wire magic.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The frame's protocol version is not the one this build speaks.
    UnsupportedVersion {
        /// Version recorded in the frame.
        found: u32,
        /// Version this build supports ([`crate::protocol::WIRE_VERSION`]).
        supported: u32,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// Bytes required.
        expected: u64,
        /// Bytes present.
        actual: u64,
    },
    /// The length prefix exceeds the per-frame ceiling — a corrupt or
    /// hostile peer must fail typed, not force a giant allocation.
    Oversized {
        /// Length the frame claims.
        len: u64,
        /// Ceiling ([`crate::protocol::MAX_FRAME_LEN`]).
        max: u64,
    },
    /// The payload checksum does not match the frame header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The frame kind is not one this build knows.
    UnknownFrame {
        /// Kind recorded in the frame.
        kind: u32,
    },
    /// A well-formed frame arrived where the conversation state does not
    /// allow it (e.g. a response kind sent as a request).
    UnexpectedFrame {
        /// What the receiver was waiting for.
        expected: &'static str,
        /// Kind actually received.
        found: u32,
    },
    /// A payload failed structural decoding.
    Corrupt(String),
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable error code ([`crate::protocol::err_code`]).
        code: u32,
        /// Human-readable server-side message.
        message: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(msg) => write!(f, "io error: {msg}"),
            ProtocolError::Disconnected => write!(f, "peer disconnected"),
            ProtocolError::BadMagic { found } => {
                write!(f, "not a wire frame (magic {found:02x?})")
            }
            ProtocolError::UnsupportedVersion { found, supported } => write!(
                f,
                "wire protocol version {found} is not supported \
                 (this build speaks version {supported})"
            ),
            ProtocolError::Truncated { expected, actual } => {
                write!(f, "truncated frame: {actual} of {expected} bytes")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte ceiling")
            }
            ProtocolError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            ProtocolError::UnknownFrame { kind } => write!(f, "unknown frame kind {kind}"),
            ProtocolError::UnexpectedFrame { expected, found } => {
                write!(f, "expected {expected}, got frame kind {found}")
            }
            ProtocolError::Corrupt(msg) => write!(f, "corrupt frame payload: {msg}"),
            ProtocolError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => ProtocolError::Disconnected,
            _ => ProtocolError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific_per_variant() {
        let cases: Vec<(ProtocolError, &str)> = vec![
            (ProtocolError::Disconnected, "disconnected"),
            (
                ProtocolError::BadMagic {
                    found: *b"NOTAWIRE",
                },
                "not a wire frame",
            ),
            (
                ProtocolError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                ProtocolError::Truncated {
                    expected: 32,
                    actual: 5,
                },
                "5 of 32",
            ),
            (
                ProtocolError::Oversized {
                    len: 1 << 40,
                    max: 1 << 28,
                },
                "ceiling",
            ),
            (
                ProtocolError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (ProtocolError::UnknownFrame { kind: 77 }, "kind 77"),
            (
                ProtocolError::Remote {
                    code: 2,
                    message: "bad batch".into(),
                },
                "server error 2",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn io_eof_maps_to_disconnected() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(ProtocolError::from(eof), ProtocolError::Disconnected);
        let other = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no");
        assert!(matches!(ProtocolError::from(other), ProtocolError::Io(_)));
    }
}
