//! # ngd-serve
//!
//! A **long-lived incremental detection service** over memory-mapped
//! snapshots — the deployment the paper's `|ΔG|`-bounded cost result
//! (*"Catching Numeric Inconsistencies in Graphs"*, SIGMOD 2018) actually
//! pays off in: a daemon mmaps one `.ngds` snapshot and compiles a rule
//! set **once**, then absorbs a continuous stream of `ΔG` batches from
//! many concurrent clients, answering each with the violation delta it
//! causes and the cost ledger that proves the work stayed bounded by the
//! update's `dΣ`-neighbourhood.
//!
//! ```text
//!            ngd-serve daemon (one process, one mmap per epoch)
//!            ┌────────────────────────────────────────┐
//!  client A ─┤ session A: DeltaOverlay ⊕ accumulated  │
//!  client B ─┤ session B: DeltaOverlay ⊕ accumulated  ├── Arc<SnapshotStore>
//!  client C ─┤ session C: DeltaOverlay ⊕ accumulated  │   (current epoch,
//!            └──────────────────┬─────────────────────┘    shared, zero-copy)
//!                       COMPACT │ or --compact-after
//!                               ▼
//!            CompactionWriter → <stem>.eN.ngds → atomic publish;
//!            sessions re-root at their next message boundary
//! ```
//!
//! Accumulated overlays do not grow forever: **snapshot compaction**
//! folds a session's net `ΔG` into the next epoch file
//! ([`ngd_graph::CompactionWriter`] — a streaming merge, never a
//! re-freeze), the daemon atomically publishes the new mapping, and each
//! session re-roots ([`ngd_detect::IncrementalSession::rebase_onto`]) at
//! its next message boundary, announced to its client by one pushed
//! `EPOCH_SWITCHED` frame.  Old mappings are reference-counted and unmap
//! when the last session holding them disconnects.  Served `ΔVio` is
//! byte-identical across a swap (`tests/serve_equivalence.rs`).
//!
//! * [`protocol`] — the framed, versioned, length-prefixed binary wire
//!   format (header conventions borrowed from the snapshot format, same
//!   payload checksum);
//! * [`wire`] — the bounded payload codec (symbols travel as strings and
//!   are re-interned on arrival);
//! * [`error`] — [`ProtocolError`], one typed variant per damage mode,
//!   mirroring `PersistError`;
//! * [`server`] — the daemon: [`SnapshotStore`] (shared or sharded,
//!   auto-detected), an epoll/poll reactor plus a bounded worker pool
//!   (OS threads scale with [`ServeOptions::worker_threads`], not with
//!   connections), streaming ΔVio during expansion, graceful shutdown;
//! * [`client`] — [`ServeClient`], the typed client used by `ngd-cli`,
//!   the benches and the equivalence tests.
//!
//! Served `ΔVio` streams are **byte-identical** to running
//! [`ngd_detect::pinc_dect`] in-process — `tests/serve_equivalence.rs`
//! (workspace integration tests) pins that on every figure-1 scenario and
//! the 11k-node synthetic workload.
//!
//! ## Quick example
//!
//! ```
//! use ngd_core::{paper, RuleSet};
//! use ngd_detect::DetectorConfig;
//! use ngd_graph::persist::SnapshotWriter;
//! use ngd_graph::{intern, BatchUpdate};
//! use ngd_serve::{ServeAddr, ServeClient, Server, SnapshotStore};
//!
//! // Ingest: freeze the figure-1 graph and write a snapshot file.
//! let (graph, fake) = paper::figure1_g4();
//! let path = std::env::temp_dir().join(format!("ngd-serve-doc-{}.ngds", std::process::id()));
//! SnapshotWriter::new().write(&graph.freeze(), &path).unwrap();
//!
//! // Serve: daemon on an ephemeral TCP port.
//! let sigma = RuleSet::from_rules(vec![paper::phi4(1, 1, 10_000)]);
//! let server = Server::start(
//!     SnapshotStore::open(&path).unwrap(),
//!     sigma,
//!     &ServeAddr::Tcp("127.0.0.1:0".into()),
//!     DetectorConfig::with_processors(2),
//! )
//! .unwrap();
//!
//! // Client: submit the status-edge deletion of Example 7.
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let status = graph
//!     .out_neighbors(fake)
//!     .iter()
//!     .find(|&&(_, l)| l == intern("status"))
//!     .map(|&(n, _)| n)
//!     .unwrap();
//! let mut delta = BatchUpdate::new();
//! delta.delete_edge(fake, status, intern("status"));
//! let served = client.submit_update(&delta).unwrap();
//! assert_eq!(served.delta.removed.len(), 1);
//!
//! client.shutdown_server().unwrap();
//! drop(client);
//! server.wait();
//! std::fs::remove_file(&path).ok();
//! ```

pub mod client;
pub mod error;
mod poller;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{ServeClient, ServedDelta, ServedQuery};
pub use error::ProtocolError;
pub use protocol::{DoneResponse, EpochNotice, EpochResponse, HelloResponse, Side, StatsResponse};
pub use server::{ServeAddr, ServeOptions, Server, SnapshotStore};
