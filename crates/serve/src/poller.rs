//! A minimal readiness poller over vendored `epoll(7)` / `poll(2)` FFI.
//!
//! The workspace builds without registry access, so instead of `mio` this
//! module vendors the handful of libc calls the reactor needs — the same
//! trade the `mmap(2)` shim in `ngd_graph::persist` makes.  Two
//! implementations sit behind one API:
//!
//! * **Linux** — `epoll_create1`/`epoll_ctl`/`epoll_wait`, with an
//!   `eventfd(2)` as the cross-thread [`Waker`].  Readiness is
//!   level-triggered (the default), so a partially drained socket stays
//!   ready and the reactor never needs read-until-`EAGAIN` discipline for
//!   correctness.
//! * **Other Unix** — `poll(2)` over a registration table, with a
//!   non-blocking self-pipe as the waker.  `O(n)` per wait, which is fine
//!   at the hundreds-of-fds scale the fallback serves.
//!
//! Non-Unix hosts never reach this module: the server keeps a
//! thread-per-connection fallback there (`cfg`-gated in `server.rs`),
//! mirroring how the mmap shim degrades to a heap buffer.
//!
//! The API is deliberately tiny: register an fd with a `u64` token and a
//! read/write interest pair, modify it, deregister it, and block in
//! [`Poller::wait`] until something is ready or the waker fires.  Tokens
//! are chosen by the caller; fd lifecycle stays with the caller too (the
//! poller never closes a registered fd).

#![cfg(unix)]

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or a peer hang-up, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// The interest set an fd is registered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake on readable.
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

// ---------------------------------------------------------------------------
// Linux: epoll + eventfd
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    use std::os::raw::{c_int, c_uint, c_void};

    // epoll_event is packed on x86/x86_64 (kernel ABI) and naturally
    // aligned elsewhere; mirror the kernel headers.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_bits(interest: Interest) -> u32 {
        // RDHUP rides with read interest only: a connection whose reads
        // are deliberately disarmed (request in flight) must not spin the
        // level-triggered loop on a peer's FIN — it discovers the hangup
        // on its next write or when read interest returns.
        let mut bits = 0;
        if interest.read {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// The epoll instance.  `epoll_ctl` is thread-safe, but this reactor
    /// only ever drives it from one thread; everything takes `&mut self`
    /// to keep the API identical to the `poll(2)` fallback.
    #[derive(Debug)]
    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            let event_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event as *mut EpollEvent
            };
            // SAFETY: `event` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// Block until at least one registered fd is ready, appending the
        /// notifications to `events`.
        pub fn wait(&mut self, events: &mut Vec<Event>) -> io::Result<()> {
            const MAX_EVENTS: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                // SAFETY: `buf` is valid for MAX_EVENTS entries; -1 blocks
                // until readiness.
                let rc =
                    unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, -1) };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for entry in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = entry.events;
                let token = entry.data;
                events.push(Event {
                    token,
                    // Errors and hang-ups surface as readability: the next
                    // read returns 0/err and the reactor tears down.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wake-up for a blocked [`Poller::wait`]: an
    /// `eventfd(2)` counter.  Register [`Waker::fd`] with the poller;
    /// any thread may call [`Waker::wake`].
    #[derive(Debug)]
    pub(crate) struct Waker {
        efd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            // SAFETY: plain syscall.
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker { efd })
        }

        pub fn fd(&self) -> RawFd {
            self.efd
        }

        /// Make the next (or current) `wait` return.  Never blocks: an
        /// eventfd add can only fail with EAGAIN once the counter
        /// saturates, at which point the reader is already pending wake-up.
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack buffer.
            unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        }

        /// Consume pending wake-ups (called by the reactor when the waker
        /// fd polls readable).
        pub fn drain(&self) {
            let mut buf = 0u64;
            // SAFETY: reads 8 bytes into a live stack buffer; EFD_NONBLOCK
            // makes an empty counter return EAGAIN instead of blocking.
            unsafe { read(self.efd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: efd came from eventfd and is closed once.
            unsafe { close(self.efd) };
        }
    }

    // SAFETY: the eventfd is a kernel object; concurrent writes from many
    // threads and reads from the reactor are the documented use.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

// ---------------------------------------------------------------------------
// Other Unix: poll(2) + self-pipe
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong, c_void};
    use std::os::unix::io::RawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// Registration-table poller: `wait` rebuilds the `pollfd` array from
    /// the table each call — `O(n)`, acceptable at fallback scale.
    #[derive(Debug)]
    pub(crate) struct Poller {
        table: HashMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                table: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.table.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.table.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.table.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.table.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(self.table.len());
            for (&fd, &(token, interest)) in &self.table {
                let mut bits: c_short = 0;
                if interest.read {
                    bits |= POLLIN;
                }
                if interest.write {
                    bits |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: bits,
                    revents: 0,
                });
                tokens.push(token);
            }
            loop {
                // SAFETY: `fds` is a live, correctly sized array; -1 blocks.
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, -1) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (entry, &token) in fds.iter().zip(&tokens) {
                let bits = entry.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    /// Self-pipe waker: a write end any thread may poke, a non-blocking
    /// read end the reactor registers and drains.
    #[derive(Debug)]
    pub(crate) struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a live 2-entry array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: plain fcntl on fds we own.
                unsafe {
                    let flags = fcntl(fd, F_GETFL, 0);
                    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
                }
            }
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn fd(&self) -> RawFd {
            self.read_fd
        }

        pub fn wake(&self) {
            let one = [1u8];
            // SAFETY: writes 1 byte from a live buffer; a full pipe means
            // the reader is already pending wake-up, so EAGAIN is fine.
            unsafe { write(self.write_fd, one.as_ptr().cast(), 1) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reads into a live buffer; O_NONBLOCK means an
                // empty pipe returns EAGAIN instead of blocking.
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: both fds came from pipe() and are closed once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    // SAFETY: pipe writes are atomic per POSIX; many writers + one reader
    // is the documented self-pipe pattern.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

pub(crate) use imp::{Poller, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::Arc;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        a.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let mut b = b;
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn write_interest_fires_and_can_be_disarmed() {
        let (_a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        // An idle socket is immediately writable.
        poller
            .register(
                b.as_raw_fd(),
                9,
                Interest {
                    read: false,
                    write: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.writable));
        // Disarmed, only the waker can end the next wait.
        poller.modify(b.as_raw_fd(), 9, Interest::NONE).unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 1, Interest::READ).unwrap();
        let poke = Arc::clone(&waker);
        let handle = std::thread::spawn(move || poke.wake());
        events.clear();
        poller.wait(&mut events).unwrap();
        handle.join().unwrap();
        assert!(events.iter().all(|e| e.token == 1));
        waker.drain();
    }

    #[test]
    fn hangup_reports_readable() {
        let (a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        // EOF must surface as readability so the reactor's read sees 0.
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }
}
