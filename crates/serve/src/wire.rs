//! The payload codec: bounded little-endian encoding of the domain types
//! that cross the socket.
//!
//! Mirrors the blob conventions of `ngd_graph::persist::format` (everything
//! little-endian, length-prefixed, decoded through a bounds-checked reader
//! whose every overrun is a typed error), with one addition the snapshot
//! format does not need: **symbols travel as strings**.  A [`Sym`] is a
//! process-local interned id, so the wire carries the string form and the
//! decoder re-interns on arrival — the same translation the snapshot format
//! performs through its string table.
//!
//! Encoding is canonical: sets are written in their deterministic iteration
//! order and attribute maps are sorted by attribute name, so equal values
//! encode to equal bytes on any process.

use crate::error::ProtocolError;
use ngd_detect::{CostLedger, SearchStats};
use ngd_graph::{intern, AttrMap, BatchUpdate, EdgeOp, EdgeRef, NewNode, NodeId, Sym, Value};
use ngd_match::{DeltaViolations, Violation, ViolationSet};

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append an `f64` as its little-endian bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Append a symbol in its string form.
    pub fn sym(&mut self, value: Sym) {
        self.str(value.as_str());
    }
}

/// Bounds-checked little-endian payload reader; every overrun or malformed
/// record is a typed [`ProtocolError::Corrupt`], never a panic.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> WireReader<'a> {
    /// Read `bytes`, labelling errors with `what` (the payload type).
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        WireReader {
            bytes,
            pos: 0,
            what,
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(len).ok_or_else(|| self.overrun())?;
        if end > self.bytes.len() {
            return Err(self.overrun());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn overrun(&self) -> ProtocolError {
        ProtocolError::Corrupt(format!(
            "{} payload ends early at byte {} of {}",
            self.what,
            self.pos,
            self.bytes.len()
        ))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read an `f64` from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8B"),
        )))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ProtocolError::Corrupt(format!("{}: non-UTF-8 string: {e}", self.what)))
    }

    /// Read a symbol from its string form, re-interning locally.
    pub fn sym(&mut self) -> Result<Sym, ProtocolError> {
        Ok(intern(&self.str()?))
    }

    /// Validate that `count` records of at least `record_size` bytes each
    /// can still follow (a crafted count must fail typed *before* it drives
    /// a `with_capacity`).
    pub fn record_count(&self, count: u32, record_size: usize) -> Result<usize, ProtocolError> {
        let count = count as usize;
        let remaining = self.bytes.len() - self.pos;
        if count
            .checked_mul(record_size)
            .is_none_or(|need| need > remaining)
        {
            return Err(ProtocolError::Corrupt(format!(
                "{}: {count} records of >= {record_size} bytes in {remaining} remaining bytes",
                self.what
            )));
        }
        Ok(count)
    }

    /// Require that the payload was consumed exactly.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.bytes.len() {
            return Err(ProtocolError::Corrupt(format!(
                "{} payload has {} trailing bytes",
                self.what,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------------

const VALUE_INT: u8 = 0;
const VALUE_STR: u8 = 1;
const VALUE_BOOL: u8 = 2;

/// Encode an attribute value.
pub fn put_value(w: &mut WireWriter, value: &Value) {
    match value {
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(VALUE_BOOL);
            w.u8(u8::from(*b));
        }
    }
}

/// Decode an attribute value.
pub fn get_value(r: &mut WireReader<'_>) -> Result<Value, ProtocolError> {
    match r.u8()? {
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_STR => Ok(Value::Str(r.str()?)),
        VALUE_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        tag => Err(ProtocolError::Corrupt(format!("unknown Value tag {tag}"))),
    }
}

/// Encode an attribute map, sorted by attribute name for canonical bytes.
pub fn put_attrs(w: &mut WireWriter, attrs: &AttrMap) {
    let mut pairs: Vec<(Sym, &Value)> = attrs.iter().collect();
    pairs.sort_by_key(|&(name, _)| name.as_str());
    w.u32(pairs.len() as u32);
    for (name, value) in pairs {
        w.sym(name);
        put_value(w, value);
    }
}

/// Decode an attribute map.
pub fn get_attrs(r: &mut WireReader<'_>) -> Result<AttrMap, ProtocolError> {
    let raw_count = r.u32()?;
    let count = r.record_count(raw_count, 6)?;
    let mut attrs = AttrMap::new();
    for _ in 0..count {
        let name = r.sym()?;
        let value = get_value(r)?;
        attrs.set(name, value);
    }
    Ok(attrs)
}

fn put_edge(w: &mut WireWriter, edge: EdgeRef) {
    w.u32(edge.src.0);
    w.u32(edge.dst.0);
    w.sym(edge.label);
}

fn get_edge(r: &mut WireReader<'_>) -> Result<EdgeRef, ProtocolError> {
    let src = NodeId(r.u32()?);
    let dst = NodeId(r.u32()?);
    let label = r.sym()?;
    Ok(EdgeRef::new(src, dst, label))
}

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Encode a batch update (`ΔG`).
pub fn put_batch(w: &mut WireWriter, batch: &BatchUpdate) {
    w.u32(batch.new_nodes.len() as u32);
    for node in &batch.new_nodes {
        w.sym(node.label);
        put_attrs(w, &node.attrs);
    }
    w.u32(batch.ops.len() as u32);
    for op in &batch.ops {
        match op {
            EdgeOp::Insert(e) => {
                w.u8(OP_INSERT);
                put_edge(w, *e);
            }
            EdgeOp::Delete(e) => {
                w.u8(OP_DELETE);
                put_edge(w, *e);
            }
        }
    }
}

/// Decode a batch update.
pub fn get_batch(r: &mut WireReader<'_>) -> Result<BatchUpdate, ProtocolError> {
    let mut batch = BatchUpdate::new();
    let raw_nodes = r.u32()?;
    let nodes = r.record_count(raw_nodes, 8)?;
    for _ in 0..nodes {
        let label = r.sym()?;
        let attrs = get_attrs(r)?;
        batch.new_nodes.push(NewNode { label, attrs });
    }
    let raw_ops = r.u32()?;
    let ops = r.record_count(raw_ops, 13)?;
    for _ in 0..ops {
        let tag = r.u8()?;
        let edge = get_edge(r)?;
        batch.ops.push(match tag {
            OP_INSERT => EdgeOp::Insert(edge),
            OP_DELETE => EdgeOp::Delete(edge),
            other => {
                return Err(ProtocolError::Corrupt(format!(
                    "unknown EdgeOp tag {other}"
                )))
            }
        });
    }
    Ok(batch)
}

/// Encode one violation.
pub fn put_violation(w: &mut WireWriter, violation: &Violation) {
    w.str(&violation.rule_id);
    w.u32(violation.nodes.len() as u32);
    for node in &violation.nodes {
        w.u32(node.0);
    }
}

/// Decode one violation.
pub fn get_violation(r: &mut WireReader<'_>) -> Result<Violation, ProtocolError> {
    let rule_id = r.str()?;
    let raw_count = r.u32()?;
    let count = r.record_count(raw_count, 4)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(NodeId(r.u32()?));
    }
    Ok(Violation::new(rule_id, nodes))
}

/// Encode a slice of violations (one streamed chunk).
pub fn put_violations(w: &mut WireWriter, violations: &[&Violation]) {
    w.u32(violations.len() as u32);
    for violation in violations {
        put_violation(w, violation);
    }
}

/// Decode a chunk of violations.
pub fn get_violations(r: &mut WireReader<'_>) -> Result<Vec<Violation>, ProtocolError> {
    let raw_count = r.u32()?;
    let count = r.record_count(raw_count, 8)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(get_violation(r)?);
    }
    Ok(out)
}

/// Encode the full cost ledger (every counter, `remote_fetches` included).
pub fn put_cost(w: &mut WireWriter, cost: &CostLedger) {
    w.f64(cost.latency_units);
    w.u64(cost.scanned);
    w.u64(cost.splits);
    w.u64(cost.local_expansions);
    w.u64(cost.migrations);
    w.u64(cost.remote_fetches);
}

/// Decode a cost ledger.
pub fn get_cost(r: &mut WireReader<'_>) -> Result<CostLedger, ProtocolError> {
    Ok(CostLedger {
        latency_units: r.f64()?,
        scanned: r.u64()?,
        splits: r.u64()?,
        local_expansions: r.u64()?,
        migrations: r.u64()?,
        remote_fetches: r.u64()?,
    })
}

/// Encode matcher statistics.
pub fn put_stats(w: &mut WireWriter, stats: &SearchStats) {
    w.u64(stats.expanded as u64);
    w.u64(stats.candidates_inspected as u64);
    w.u64(stats.matches_found as u64);
    w.u64(stats.gallop_intersections as u64);
    w.u64(stats.plan_cache_hits);
    w.u64(stats.plan_cache_misses);
}

/// Decode matcher statistics.
pub fn get_stats(r: &mut WireReader<'_>) -> Result<SearchStats, ProtocolError> {
    Ok(SearchStats {
        expanded: r.u64()? as usize,
        candidates_inspected: r.u64()? as usize,
        matches_found: r.u64()? as usize,
        gallop_intersections: r.u64()? as usize,
        plan_cache_hits: r.u64()?,
        plan_cache_misses: r.u64()?,
    })
}

/// Rebuild a [`ViolationSet`] from streamed chunks.
pub fn collect_set(chunks: impl IntoIterator<Item = Violation>) -> ViolationSet {
    chunks.into_iter().collect()
}

/// Rebuild a [`DeltaViolations`] from streamed added/removed chunks.
pub fn collect_delta(
    added: impl IntoIterator<Item = Violation>,
    removed: impl IntoIterator<Item = Violation>,
) -> DeltaViolations {
    DeltaViolations {
        added: collect_set(added),
        removed: collect_set(removed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(2.5);
        w.str("héllo");
        w.sym(intern("follower"));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.sym().unwrap(), intern("follower"));
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.u32(1);
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "test");
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(ProtocolError::Corrupt(_))));
    }

    #[test]
    fn overruns_are_typed_not_panics() {
        let mut r = WireReader::new(&[1, 2], "test");
        assert!(matches!(r.u64(), Err(ProtocolError::Corrupt(_))));
        // A crafted count larger than the payload fails before allocating.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "test");
        let count = r.u32().unwrap();
        assert!(matches!(
            r.record_count(count, 4),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn batch_update_round_trips() {
        let mut batch = BatchUpdate::new();
        let node = batch.add_node(
            10,
            intern("account"),
            AttrMap::from_pairs([
                ("follower", Value::Int(2)),
                ("name", Value::Str("x".into())),
            ]),
        );
        batch.insert_edge(NodeId(3), node, intern("keys"));
        batch.delete_edge(NodeId(1), NodeId(2), intern("status"));
        let mut w = WireWriter::new();
        put_batch(&mut w, &batch);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "batch");
        let back = get_batch(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn violations_and_reports_round_trip() {
        let violations: Vec<Violation> = vec![
            Violation::new("phi1", vec![NodeId(1), NodeId(2)]),
            Violation::new("phi2", vec![NodeId(9)]),
        ];
        let mut w = WireWriter::new();
        put_violations(&mut w, &violations.iter().collect::<Vec<_>>());
        let mut cost = CostLedger::default();
        cost.record_remote(5, 60.0);
        cost.record_scan(77);
        put_cost(&mut w, &cost);
        put_stats(
            &mut w,
            &SearchStats {
                expanded: 1,
                candidates_inspected: 2,
                matches_found: 3,
                gallop_intersections: 6,
                plan_cache_hits: 4,
                plan_cache_misses: 5,
            },
        );
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "report");
        assert_eq!(get_violations(&mut r).unwrap(), violations);
        let cost_back = get_cost(&mut r).unwrap();
        assert_eq!(cost_back.remote_fetches, 5);
        assert_eq!(cost_back.scanned, 77);
        let stats = get_stats(&mut r).unwrap();
        assert_eq!(stats.matches_found, 3);
        assert_eq!(stats.plan_cache_hits, 4);
        assert_eq!(stats.plan_cache_misses, 5);
        r.finish().unwrap();
    }

    #[test]
    fn value_tags_reject_unknowns() {
        let mut r = WireReader::new(&[9], "value");
        assert!(matches!(get_value(&mut r), Err(ProtocolError::Corrupt(_))));
    }

    #[test]
    fn attr_encoding_is_canonical_regardless_of_insertion_order() {
        let mut a = AttrMap::new();
        a.set_named("zz", Value::Int(1));
        a.set_named("aa", Value::Int(2));
        let mut b = AttrMap::new();
        b.set_named("aa", Value::Int(2));
        b.set_named("zz", Value::Int(1));
        let encode = |attrs: &AttrMap| {
            let mut w = WireWriter::new();
            put_attrs(&mut w, attrs);
            w.into_bytes()
        };
        assert_eq!(encode(&a), encode(&b));
    }
}
