//! [`ServeClient`] — the typed client side of the wire protocol.
//!
//! One client owns one connection, i.e. one server-side session: updates
//! submitted through it accumulate on the server until [`ServeClient::reset`].
//! Streamed violation chunks can be observed incrementally through the
//! `*_streaming` variants or collected into the same
//! [`DeltaViolations`] / [`ViolationSet`] structures the in-process
//! detectors return — the equivalence tests assert the two are
//! byte-identical.

use crate::error::ProtocolError;
use crate::protocol::{
    frame, read_frame, write_frame, DoneResponse, EpochNotice, EpochResponse, ErrorResponse,
    HelloRequest, HelloResponse, MetricsResponse, OkResponse, RulesRequest, Side, StatsResponse,
    UpdateRequest, VioChunk,
};
use crate::server::ServeAddr;
use ngd_core::RuleSet;
use ngd_graph::BatchUpdate;
use ngd_match::{DeltaViolations, Violation, ViolationSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A served incremental answer: the reassembled `ΔVio` plus the closing
/// summary (cost ledger, matcher stats, server-side timing).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedDelta {
    /// The violation delta, reassembled from the streamed chunks.
    pub delta: DeltaViolations,
    /// The closing `UPDATE_DONE` summary.
    pub done: DoneResponse,
}

impl ServedDelta {
    /// Server-side wall-clock time of the detection run.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.done.elapsed_nanos)
    }
}

/// A served batch-detection answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedQuery {
    /// The full violation set, reassembled from the streamed chunks.
    pub violations: ViolationSet,
    /// The closing `QUERY_DONE` summary.
    pub done: DoneResponse,
}

impl ServedQuery {
    /// Server-side wall-clock time of the detection run.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.done.elapsed_nanos)
    }
}

enum ClientStream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to an `ngd-serve` daemon (= one server-side session).
pub struct ServeClient {
    stream: ClientStream,
    hello: HelloResponse,
    /// The most recent `EPOCH_SWITCHED` push absorbed from the stream
    /// (the server announces a re-root once, ahead of its next answer).
    last_epoch_switch: Option<EpochNotice>,
    /// How many `EPOCH_SWITCHED` pushes this connection has absorbed —
    /// including ones interleaved *between* `VIO_CHUNK` frames of a
    /// single answer, which a compaction racing an expansion produces.
    epoch_switches_seen: u64,
}

impl ServeClient {
    /// Connect and perform the `HELLO` handshake as `client_name`.
    pub fn connect_as(addr: &ServeAddr, client_name: &str) -> Result<ServeClient, ProtocolError> {
        let stream = match addr {
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    ClientStream::Unix(std::os::unix::net::UnixStream::connect(path).map_err(
                        |e| ProtocolError::Io(format!("connect {}: {e}", path.display())),
                    )?)
                }
                #[cfg(not(unix))]
                {
                    return Err(ProtocolError::Io(format!(
                        "unix sockets are not available on this host (asked for {})",
                        path.display()
                    )));
                }
            }
            ServeAddr::Tcp(spec) => {
                let stream = TcpStream::connect(spec)
                    .map_err(|e| ProtocolError::Io(format!("connect {spec}: {e}")))?;
                let _ = stream.set_nodelay(true);
                ClientStream::Tcp(stream)
            }
        };
        let mut client = ServeClient {
            stream,
            hello: HelloResponse {
                server: String::new(),
                node_count: 0,
                edge_count: 0,
                fragment_count: 0,
                rule_count: 0,
                diameter: 0,
            },
            last_epoch_switch: None,
            epoch_switches_seen: 0,
        };
        let request = HelloRequest {
            client: client_name.to_string(),
        };
        write_frame(&mut client.stream, frame::HELLO, &request.encode())?;
        let payload = client.expect(frame::HELLO_OK, "HELLO_OK")?;
        client.hello = HelloResponse::decode(&payload)?;
        Ok(client)
    }

    /// Connect with a default client name.
    pub fn connect(addr: &ServeAddr) -> Result<ServeClient, ProtocolError> {
        ServeClient::connect_as(addr, "ngd-serve-client")
    }

    /// Server and snapshot facts from the handshake.
    pub fn server_info(&self) -> &HelloResponse {
        &self.hello
    }

    /// Read one frame; `ERROR` frames become [`ProtocolError::Remote`] and
    /// pushed `EPOCH_SWITCHED` notices are absorbed transparently
    /// (recorded for [`ServeClient::last_epoch_switch`]).
    fn next_frame(&mut self) -> Result<(u32, Vec<u8>), ProtocolError> {
        loop {
            let (kind, payload) = read_frame(&mut self.stream)?;
            if kind == frame::EPOCH_SWITCHED {
                self.last_epoch_switch = Some(EpochNotice::decode(&payload)?);
                self.epoch_switches_seen += 1;
                continue;
            }
            if kind == frame::ERROR {
                let err = ErrorResponse::decode(&payload)?;
                return Err(ProtocolError::Remote {
                    code: err.code,
                    message: err.message,
                });
            }
            return Ok((kind, payload));
        }
    }

    /// The most recent epoch switch the server announced for this session
    /// (set when the session re-rooted onto a newly compacted snapshot).
    pub fn last_epoch_switch(&self) -> Option<&EpochNotice> {
        self.last_epoch_switch.as_ref()
    }

    /// Total `EPOCH_SWITCHED` pushes absorbed on this connection, wherever
    /// they appeared — ahead of an answer or interleaved mid-stream.
    pub fn epoch_switches_seen(&self) -> u64 {
        self.epoch_switches_seen
    }

    /// Read one frame and require a specific kind.
    fn expect(&mut self, kind: u32, what: &'static str) -> Result<Vec<u8>, ProtocolError> {
        let (found, payload) = self.next_frame()?;
        if found != kind {
            return Err(ProtocolError::UnexpectedFrame {
                expected: what,
                found,
            });
        }
        Ok(payload)
    }

    /// Install `sigma` as this session's rule set (compiled server-side).
    pub fn set_rules(&mut self, sigma: &RuleSet) -> Result<String, ProtocolError> {
        self.set_rules_source(&sigma.to_json())
    }

    /// Install a rule set from raw rule-file text (`.ngdl`, the legacy
    /// DSL, or JSON — the server sniffs the format), so a session can
    /// swap rules straight from a file without parsing client-side.
    pub fn set_rules_source(&mut self, source: &str) -> Result<String, ProtocolError> {
        let request = RulesRequest {
            source: source.to_owned(),
        };
        write_frame(&mut self.stream, frame::RULES, &request.encode())?;
        let payload = self.expect(frame::OK, "OK")?;
        Ok(OkResponse::decode(&payload)?.message)
    }

    /// Drain a `VIO_CHUNK*` stream up to its closing `done_kind` frame,
    /// handing every chunk to `on_chunk` as it arrives.
    fn drain_stream(
        &mut self,
        done_kind: u32,
        done_what: &'static str,
        mut on_chunk: impl FnMut(Side, Vec<Violation>),
    ) -> Result<DoneResponse, ProtocolError> {
        let mut streamed = (0u64, 0u64);
        loop {
            let (kind, payload) = self.next_frame()?;
            if kind == frame::VIO_CHUNK {
                let chunk = VioChunk::decode(&payload)?;
                match chunk.side {
                    Side::Added => streamed.0 += chunk.violations.len() as u64,
                    Side::Removed => streamed.1 += chunk.violations.len() as u64,
                }
                on_chunk(chunk.side, chunk.violations);
            } else if kind == done_kind {
                let done = DoneResponse::decode(&payload)?;
                if (done.added_total, done.removed_total) != streamed {
                    return Err(ProtocolError::Corrupt(format!(
                        "stream totals disagree: done frame says {}+{}, streamed {}+{}",
                        done.added_total, done.removed_total, streamed.0, streamed.1
                    )));
                }
                return Ok(done);
            } else {
                return Err(ProtocolError::UnexpectedFrame {
                    expected: done_what,
                    found: kind,
                });
            }
        }
    }

    /// Submit a `ΔG` batch, observing each streamed chunk as it arrives.
    pub fn submit_update_streaming(
        &mut self,
        batch: &BatchUpdate,
        on_chunk: impl FnMut(Side, Vec<Violation>),
    ) -> Result<DoneResponse, ProtocolError> {
        let request = UpdateRequest {
            batch: batch.clone(),
        };
        write_frame(&mut self.stream, frame::UPDATE, &request.encode())?;
        self.drain_stream(frame::UPDATE_DONE, "UPDATE_DONE", on_chunk)
    }

    /// Submit a `ΔG` batch and collect the full `ΔVio`.
    pub fn submit_update(&mut self, batch: &BatchUpdate) -> Result<ServedDelta, ProtocolError> {
        let mut delta = DeltaViolations::new();
        let done = self.submit_update_streaming(batch, |side, violations| {
            let set = match side {
                Side::Added => &mut delta.added,
                Side::Removed => &mut delta.removed,
            };
            for violation in violations {
                set.insert(violation);
            }
        })?;
        Ok(ServedDelta { delta, done })
    }

    /// Run full detection over the session state, observing each chunk.
    pub fn query_streaming(
        &mut self,
        on_chunk: impl FnMut(Side, Vec<Violation>),
    ) -> Result<DoneResponse, ProtocolError> {
        write_frame(&mut self.stream, frame::QUERY, &[])?;
        self.drain_stream(frame::QUERY_DONE, "QUERY_DONE", on_chunk)
    }

    /// Run full detection over the session state and collect the result.
    pub fn query(&mut self) -> Result<ServedQuery, ProtocolError> {
        let mut violations = ViolationSet::new();
        let done = self.query_streaming(|_, chunk| {
            for violation in chunk {
                violations.insert(violation);
            }
        })?;
        Ok(ServedQuery { violations, done })
    }

    /// Fold this session's accumulated `ΔG` into a fresh snapshot epoch
    /// and publish it server-wide.  Afterwards this session reads the new
    /// epoch with an empty overlay; other sessions re-root at their next
    /// message boundary.
    pub fn compact(&mut self) -> Result<EpochResponse, ProtocolError> {
        write_frame(&mut self.stream, frame::COMPACT, &[])?;
        let payload = self.expect(frame::EPOCH_OK, "EPOCH_OK")?;
        EpochResponse::decode(&payload)
    }

    /// Query the session's and the server's current snapshot epochs.
    pub fn epoch(&mut self) -> Result<EpochResponse, ProtocolError> {
        write_frame(&mut self.stream, frame::EPOCH, &[])?;
        let payload = self.expect(frame::EPOCH_OK, "EPOCH_OK")?;
        EpochResponse::decode(&payload)
    }

    /// Fetch the daemon's metrics-registry snapshot (counters, gauges,
    /// latency histograms across match/detect/persist/serve).  Render it
    /// with [`ngd_obs::render_prometheus`] / [`ngd_obs::render_json`].
    pub fn metrics(&mut self) -> Result<ngd_obs::MetricsSnapshot, ProtocolError> {
        write_frame(&mut self.stream, frame::METRICS, &[])?;
        let payload = self.expect(frame::METRICS_OK, "METRICS_OK")?;
        Ok(MetricsResponse::decode(&payload)?.snapshot)
    }

    /// Fetch server and session statistics.
    pub fn stats(&mut self) -> Result<StatsResponse, ProtocolError> {
        write_frame(&mut self.stream, frame::STATS, &[])?;
        let payload = self.expect(frame::STATS_OK, "STATS_OK")?;
        StatsResponse::decode(&payload)
    }

    /// Drop the session's accumulated update.
    pub fn reset(&mut self) -> Result<String, ProtocolError> {
        write_frame(&mut self.stream, frame::RESET, &[])?;
        let payload = self.expect(frame::OK, "OK")?;
        Ok(OkResponse::decode(&payload)?.message)
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<String, ProtocolError> {
        write_frame(&mut self.stream, frame::SHUTDOWN, &[])?;
        let payload = self.expect(frame::OK, "OK")?;
        Ok(OkResponse::decode(&payload)?.message)
    }
}
