//! # ngd-json
//!
//! A minimal, self-contained JSON layer for the NGD workspace.
//!
//! The workspace is built in fully-offline environments where crates.io is
//! unreachable, so it cannot depend on `serde`/`serde_json`.  This crate
//! provides the small slice of that functionality the workspace actually
//! needs:
//!
//! * a [`Json`] value tree with a strict parser and compact/pretty printers;
//! * [`ToJson`] / [`FromJson`] conversion traits with implementations for
//!   the primitives and std containers used across the workspace;
//! * the [`impl_json_struct!`] macro generating both trait impls for a
//!   struct from its field list (the moral equivalent of
//!   `#[derive(Serialize, Deserialize)]` without a proc macro);
//! * [`to_string`] / [`to_string_pretty`] / [`from_str`] entry points.
//!
//! Object encodings produced by the macro list fields in declaration order,
//! and decoding is order-independent, so round-trips are stable and
//! hand-written JSON remains readable.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (JSON numbers without fraction/exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Errors raised while parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors when the field is missing.
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as an `i64`, accepting integer-valued floats.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Json::Int(i) => Ok(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(*f as i64),
            other => Err(JsonError::new(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips through `f64::from_str`.
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (idx, (key, value)) in fields.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts (serde_json's default);
/// deeper input returns an error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn error(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.pos += 1; // step past the last hex digit
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 expects the cursor on `u`
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| self.error("invalid low surrogate"))?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after a `\u` (cursor on the `u`).
    fn parse_hex4(&mut self) -> Result<u32> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end - 1; // caller advances past the last digit
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_rfc8259_number(text) {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// RFC 8259 `number` grammar: `-? (0 | [1-9][0-9]*) (\. [0-9]+)? ([eE] [+-]? [0-9]+)?`.
/// Rust's `f64::from_str` is more permissive (leading zeros, `1.`, `.5`),
/// so the token is validated before conversion to keep the parser strict.
fn is_rfc8259_number(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    // Integer part: `0` alone or a non-zero digit followed by digits.
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while b.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+') | Some(b'-')) {
            i += 1;
        }
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    i == b.len()
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be decoded from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode from a JSON value.
    fn from_json(value: &Json) -> Result<Self>;
}

/// Serialize a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize a value with indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parse and decode a value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T> {
    T::from_json(&parse(text)?)
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Json {
                    Json::Int(*self as i64)
                }
            }
            impl FromJson for $ty {
                fn from_json(value: &Json) -> Result<Self> {
                    let i = value.as_i64()?;
                    <$ty>::try_from(i)
                        .map_err(|_| JsonError::new(format!("{i} out of range for {}", stringify!($ty))))
                }
            }
        )+
    };
}

impl_json_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_bool()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_f64().map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_str().map(str::to_owned)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self> {
        Ok(value.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        self.as_ref().to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(value: &Json) -> Result<Self> {
        T::from_json(value).map(Box::new)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self> {
        let items = value.as_arr()?;
        if items.len() != 2 {
            return Err(JsonError::new("expected a 2-element array"));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(value: &Json) -> Result<Self> {
        let items = value.as_arr()?;
        if items.len() != 3 {
            return Err(JsonError::new("expected a 3-element array"));
        }
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson + Eq + Hash> ToJson for HashSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Eq + Hash> FromJson for HashSet<T> {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

// Maps encode as arrays of `[key, value]` pairs so non-string keys (interned
// symbols, node ids) round-trip without a string coercion convention.
impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(k, v)| (k, v).to_json()).collect())
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_arr()?.iter().map(<(K, V)>::from_json).collect()
    }
}

impl<K: ToJson, V: ToJson> ToJson for HashMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(k, v)| (k, v).to_json()).collect())
    }
}

impl<K: FromJson + Eq + Hash, V: FromJson> FromJson for HashMap<K, V> {
    fn from_json(value: &Json) -> Result<Self> {
        value.as_arr()?.iter().map(<(K, V)>::from_json).collect()
    }
}

impl ToJson for Duration {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("secs".to_string(), Json::Int(self.as_secs() as i64)),
            (
                "nanos".to_string(),
                Json::Int(i64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl FromJson for Duration {
    fn from_json(value: &Json) -> Result<Self> {
        let secs = u64::from_json(value.field("secs")?)?;
        let nanos = u32::from_json(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Implement [`ToJson`] and [`FromJson`] for a struct from its field list.
///
/// ```
/// struct Point { x: i64, y: i64 }
/// ngd_json::impl_json_struct!(Point { x, y });
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(ngd_json::to_string(&p), r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> $crate::Result<Self> {
                Ok(Self {
                    $( $field: $crate::FromJson::from_json(value.field(stringify!($field))?)? ),+
                })
            }
        }
    };
}

/// Implement [`ToJson`] and [`FromJson`] for a field-less (unit-variant)
/// enum, encoding each variant as its name string.
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $( <$ty>::$variant => stringify!($variant) ),+
                };
                $crate::Json::Str(name.to_string())
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> $crate::Result<Self> {
                match value.as_str()? {
                    $( stringify!($variant) => Ok(<$ty>::$variant), )+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hey\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
        assert_eq!(v.field("c").unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn string_escapes() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab ünïcode \u{1F600}";
        let v = Json::Str(original.to_string());
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
        // Escaped-form parsing, including surrogate pairs.
        let parsed = parse(r#""aéb😀c""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "aéb\u{1F600}c");
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -2.5e17] {
            let v = Json::Float(f);
            assert_eq!(parse(&v.render()).unwrap().as_f64().unwrap(), f);
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in ["{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\":}", ""] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn non_rfc_numbers_rejected() {
        for text in [
            "01", "-01", "1.", ".5", "1e", "1e+", "+1", "0x10", "1.2.3", "--1", "-",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
        for text in ["0", "-0", "10", "0.5", "1e5", "1E-3", "-2.5e17", "1.25e+9"] {
            assert!(parse(text).is_ok(), "{text:?} should parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("recursion limit"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn derive_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            name: String,
            count: usize,
            ratio: f64,
            tags: Vec<String>,
            maybe: Option<i64>,
        }
        impl_json_struct!(Sample {
            name,
            count,
            ratio,
            tags,
            maybe
        });
        let sample = Sample {
            name: "x".into(),
            count: 3,
            ratio: 0.25,
            tags: vec!["a".into(), "b".into()],
            maybe: None,
        };
        let text = to_string(&sample);
        let back: Sample = from_str(&text).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn unit_enum_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        enum Kind {
            A,
            B,
        }
        impl_json_unit_enum!(Kind { A, B });
        assert_eq!(to_string(&Kind::B), "\"B\"");
        assert_eq!(from_str::<Kind>("\"A\"").unwrap(), Kind::A);
        assert!(from_str::<Kind>("\"C\"").is_err());
    }

    #[test]
    fn maps_and_sets_roundtrip() {
        let mut map: BTreeMap<i64, String> = BTreeMap::new();
        map.insert(1, "one".into());
        map.insert(2, "two".into());
        let back: BTreeMap<i64, String> = from_str(&to_string(&map)).unwrap();
        assert_eq!(back, map);
        let set: BTreeSet<i64> = [3, 1, 2].into_iter().collect();
        let back: BTreeSet<i64> = from_str(&to_string(&set)).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(5, 123_456_789);
        let back: Duration = from_str(&to_string(&d)).unwrap();
        assert_eq!(back, d);
    }
}
